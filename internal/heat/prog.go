package heat

import (
	"fmt"

	"xsim/internal/checkpoint"
	"xsim/internal/mpi"
)

// NewProg returns a program-mode factory for the heat application: the
// step-based twin of Run, observationally identical phase for phase
// (restart probe, restore, halo exchange, compute, checkpoint, barrier,
// delete) so closure- and program-mode experiments produce the same
// virtual timelines. Program mode is what lets the headline experiments
// run at 256k–1M ranks: a parked rank is a few hundred bytes of state
// instead of a goroutine stack.
func NewProg(cfg Config) func(rank int) mpi.Prog {
	// One shared, read-only Config for every rank: at a million VPs an
	// embedded copy per runner is ~180 bytes/rank for identical data.
	return func(rank int) mpi.Prog { return &heatRunner{cfg: &cfg} }
}

// heatRunner phases; the order mirrors Run's control flow.
const (
	hpInit = iota
	hpRestore
	hpAfterRestore
	hpInitialHalo
	hpIterStart
	hpIterHalo
	hpMaybeCkpt
	hpBarrier
	hpFinish
)

// heatRunner is one rank's resumable heat application.
type heatRunner struct {
	cfg *Config // shared across ranks; read-only after NewProg
	pc  int

	fs            *checkpoint.FS
	st            *state
	startIter     int
	restoreIter   int
	prevCkpt      int
	incr          bool
	chain         []int
	iter          int
	full          bool
	proactiveDone bool

	rs         checkpoint.RestoreState
	reqs       []*mpi.Request // receives first, in directions order, then sends
	ws         mpi.WaitState
	haloPosted bool
	cs         mpi.CollectiveState
	csArmed    bool
}

// haloStep posts (once) and completes the six-face exchange of
// state.haloExchange as a resumable step.
func (p *heatRunner) haloStep(world *mpi.Comm) (done bool, park any) {
	s := p.st
	if !p.haloPosted {
		p.haloPosted = true
		p.reqs = p.reqs[:0]
		for _, d := range directions {
			req, err := world.Irecv(s.neighbor(d.dx, d.dy, d.dz), oppositeTag(d.tag))
			if err != nil {
				panic(fmt.Sprintf("heat: halo irecv: %v", err))
			}
			p.reqs = append(p.reqs, req)
		}
		for _, d := range directions {
			var req *mpi.Request
			var err error
			if s.cfg.RealCompute {
				req, err = world.Isend(s.neighbor(d.dx, d.dy, d.dz), d.tag, s.packFace(d))
			} else {
				req, err = world.IsendN(s.neighbor(d.dx, d.dy, d.dz), d.tag, s.faceSize(d))
			}
			if err != nil {
				panic(fmt.Sprintf("heat: halo isend: %v", err))
			}
			p.reqs = append(p.reqs, req)
		}
		p.ws.Begin(p.reqs...)
	}
	done, park, err := world.WaitallStep(&p.ws)
	if !done {
		return false, park
	}
	if err != nil {
		panic(fmt.Sprintf("heat: halo waitall: %v", err))
	}
	if s.cfg.RealCompute {
		// The requests are complete, so these waits cannot block; they
		// charge the same per-receive wait call the closure path does.
		for i, d := range directions {
			msg, err := world.Wait(p.reqs[i])
			if err != nil {
				panic(fmt.Sprintf("heat: halo wait: %v", err))
			}
			s.unpackFace(d, msg.Data)
		}
	}
	// Recycle the completed requests (the closure path drops them to the
	// garbage collector; freeing charges nothing and keeps steady-state
	// allocation flat at oversubscription scale) and drop the references:
	// the truncated slice's backing array must not pin a dozen dead
	// Requests per parked rank until the next exchange.
	for i := range p.reqs {
		world.Free(p.reqs[i])
		p.reqs[i] = nil
	}
	p.reqs = p.reqs[:0]
	p.haloPosted = false
	return true, nil
}

// Step advances the application; the body is Run's loop unrolled into
// resumable phases.
func (p *heatRunner) Step(env *mpi.Env, wake any) (any, bool) {
	cfg := p.cfg
	world := env.World()
	rank := env.Rank()
	tr := cfg.Tracker
	for {
		switch p.pc {
		case hpInit:
			if err := cfg.Validate(env.Size()); err != nil {
				panic(err)
			}
			tr.setPhase(rank, PhaseInit)
			fs, err := checkpoint.NewFS(env)
			if err != nil {
				panic(err)
			}
			p.fs = fs
			p.st = newState(cfg, rank)
			candidates := cfg.checkpointIterations()
			if cfg.ProactiveTrigger > 0 {
				candidates = make([]int, cfg.Iterations)
				for i := range candidates {
					candidates[i] = i + 1
				}
			}
			it, ok := fs.LatestValidAmong(cfg.prefix(), rank, candidates)
			if !ok {
				p.pc = hpAfterRestore
				continue
			}
			p.restoreIter = it
			switch {
			case cfg.RealCompute:
				p.rs.Begin(cfg.prefix(), rank, it, false)
			case fs.Tiered() || cfg.DeltaFraction > 0:
				p.rs.Begin(cfg.prefix(), rank, it, true)
			default:
				env.Elapse(env.FSModel().ReadCost(cfg.payloadBytes()))
				p.startIter = it
				p.pc = hpAfterRestore
				continue
			}
			p.pc = hpRestore
		case hpRestore:
			done, park, err := p.fs.RestoreStep(&p.rs)
			if !done {
				return park, false
			}
			if err != nil {
				panic(fmt.Sprintf("heat: rank %d cannot reload checkpoint %d: %v", rank, p.restoreIter, err))
			}
			if cfg.RealCompute {
				p.st.restore(p.rs.Payload())
			}
			p.startIter = p.restoreIter
			p.pc = hpAfterRestore
		case hpAfterRestore:
			if tr != nil {
				tr.startIter[rank] = p.startIter
			}
			p.prevCkpt = p.startIter
			p.incr = !cfg.RealCompute && cfg.DeltaFraction > 0
			if p.incr && p.startIter > 0 {
				p.chain = checkpoint.Chain(env.FSStore(), cfg.prefix(), rank, p.startIter)
			}
			tr.setPhase(rank, PhaseHalo)
			p.pc = hpInitialHalo
		case hpInitialHalo:
			done, park := p.haloStep(world)
			if !done {
				return park, false
			}
			p.iter = p.startIter
			p.pc = hpIterStart
		case hpIterStart:
			p.iter++
			if p.iter > cfg.Iterations {
				p.pc = hpFinish
				continue
			}
			if cfg.onIter != nil {
				cfg.onIter(rank, p.iter)
			}
			if tr != nil {
				tr.iters[rank] = p.iter
			}
			tr.setPhase(rank, PhaseCompute)
			p.st.computeIteration(env)
			if p.iter%cfg.ExchangeInterval == 0 || p.iter == cfg.Iterations {
				tr.setPhase(rank, PhaseHalo)
				p.pc = hpIterHalo
				continue
			}
			p.pc = hpMaybeCkpt
		case hpIterHalo:
			done, park := p.haloStep(world)
			if !done {
				return park, false
			}
			p.pc = hpMaybeCkpt
		case hpMaybeCkpt:
			iter := p.iter
			proactive := cfg.ProactiveTrigger > 0 && !p.proactiveDone &&
				env.Now() >= cfg.ProactiveTrigger
			if proactive {
				p.proactiveDone = true
			}
			if !(proactive || iter%cfg.CheckpointInterval == 0 || iter == cfg.Iterations) {
				p.pc = hpIterStart
				continue
			}
			tr.setPhase(rank, PhaseCheckpoint)
			meta := checkpoint.Meta{Iteration: iter, Rank: rank}
			p.full = !p.incr || len(p.chain) == 0 || len(p.chain) >= cfg.fullEvery()
			var err error
			switch {
			case cfg.RealCompute:
				err = p.fs.Write(cfg.prefix(), meta, p.st.encode())
			case p.full:
				err = p.fs.WriteSized(cfg.prefix(), meta, cfg.payloadBytes())
			default:
				err = p.fs.WriteIncrementalSized(cfg.prefix(), meta, p.chain[len(p.chain)-1], cfg.deltaBytes())
			}
			if err != nil {
				panic(fmt.Sprintf("heat: rank %d checkpoint %d: %v", rank, iter, err))
			}
			tr.setPhase(rank, PhaseBarrier)
			p.pc = hpBarrier
		case hpBarrier:
			if !p.csArmed {
				p.csArmed = true
				p.cs.BeginBarrier()
			}
			done, park, err := world.CollectiveStep(&p.cs)
			if !done {
				return park, false
			}
			p.csArmed = false
			if err != nil {
				panic(fmt.Sprintf("heat: rank %d barrier after checkpoint %d: %v", rank, p.iter, err))
			}
			iter := p.iter
			tr.setPhase(rank, PhaseDelete)
			if p.incr {
				if p.full {
					for _, old := range p.chain {
						if old != iter {
							p.fs.Delete(cfg.prefix(), old, rank)
						}
					}
					p.chain = append(p.chain[:0], iter)
				} else {
					p.chain = append(p.chain, iter)
				}
			} else if p.prevCkpt > 0 && p.prevCkpt != iter {
				p.fs.Delete(cfg.prefix(), p.prevCkpt, rank)
			}
			if tr != nil {
				tr.ckpts[rank]++
			}
			p.prevCkpt = iter
			p.pc = hpIterStart
		case hpFinish:
			tr.setPhase(rank, PhaseDone)
			if cfg.OnFinal != nil && cfg.RealCompute {
				cfg.OnFinal(rank, p.st.TotalHeat())
			}
			env.Finalize()
			return nil, true
		default:
			panic(fmt.Sprintf("heat: program in phase %d", p.pc))
		}
	}
}
