package heat

import (
	"math"
	"testing"

	"xsim/internal/checkpoint"
	"xsim/internal/core"
	"xsim/internal/fault"
	"xsim/internal/fsmodel"
	"xsim/internal/mpi"
	"xsim/internal/netmodel"
	"xsim/internal/procmodel"
	"xsim/internal/topology"
	"xsim/internal/vclock"
)

// fastProc is a processor model that keeps modelled compute time small in
// tests (no 1000x slowdown).
var fastProc = procmodel.Model{ReferenceHz: 1.7e9, Slowdown: 1}

func testWorld(t *testing.T, n, workers int, store *fsmodel.Store, start vclock.Time, failures fault.Schedule) *mpi.World {
	t.Helper()
	eng, err := core.New(core.Config{NumVPs: n, Workers: workers, Lookahead: vclock.Microsecond, StartClock: start})
	if err != nil {
		t.Fatal(err)
	}
	net := &netmodel.Model{
		Topo:           topology.NewFullyConnected(n),
		System:         netmodel.LinkParams{Latency: vclock.Microsecond, Bandwidth: 1e9, DetectionTimeout: 10 * vclock.Millisecond},
		OnNode:         netmodel.LinkParams{Latency: vclock.Microsecond, Bandwidth: 1e9, DetectionTimeout: 10 * vclock.Millisecond},
		EagerThreshold: 256 * 1024,
	}
	w, err := mpi.NewWorld(eng, mpi.WorldConfig{Net: net, Proc: fastProc, FSStore: store, FSModel: fsmodel.Model{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.Apply(eng, failures); err != nil {
		t.Fatal(err)
	}
	return w
}

// smallReal returns a tiny real-compute workload: 8³ grid on 8 ranks.
func smallReal(n int) Config {
	return Config{
		NX: 8, NY: 8, NZ: 8,
		PX: 2, PY: 2, PZ: 2,
		Iterations:         20,
		ExchangeInterval:   1,
		CheckpointInterval: 10,
		RealCompute:        true,
		PointCost:          1000, // ≈300 µs of modelled compute per iteration
		Alpha:              1.0 / 6.0,
	}
}

func TestValidate(t *testing.T) {
	cfg := PaperWorkload()
	if err := cfg.Validate(32768); err != nil {
		t.Errorf("paper workload invalid: %v", err)
	}
	if err := cfg.Validate(8); err == nil {
		t.Error("wrong world size should fail")
	}
	bad := cfg
	bad.NX = 100 // not divisible by 32
	if err := bad.Validate(32768); err == nil {
		t.Error("non-divisible grid should fail")
	}
	bad = cfg
	bad.Iterations = 0
	if err := bad.Validate(32768); err == nil {
		t.Error("zero iterations should fail")
	}
	bad = cfg
	bad.CheckpointInterval = 0
	if err := bad.Validate(32768); err == nil {
		t.Error("zero checkpoint interval should fail")
	}
	bad = cfg
	bad.RealCompute = true
	bad.Alpha = 0.5
	if err := bad.Validate(32768); err == nil {
		t.Error("unstable alpha should fail")
	}
}

func TestPaperWorkloadGeometry(t *testing.T) {
	cfg := PaperWorkload()
	nx, ny, nz := cfg.Local()
	if nx != 16 || ny != 16 || nz != 16 {
		t.Fatalf("local cube = %dx%dx%d, want 16³", nx, ny, nz)
	}
	if cfg.PointsPerRank() != 4096 {
		t.Fatalf("points per rank = %d", cfg.PointsPerRank())
	}
	// Calibration: one modelled iteration on the paper's processor model
	// should take about 5.25 s, so 1,000 iterations land near the
	// paper's 5,248 s baseline.
	perIter := procmodel.Paper().ComputeTime(float64(cfg.PointsPerRank()) * cfg.PointCost)
	if perIter < vclock.FromSeconds(5.0) || perIter > vclock.FromSeconds(5.5) {
		t.Fatalf("per-iteration compute = %v, want ≈5.25 s", perIter)
	}
}

func TestRealComputeConservation(t *testing.T) {
	const n = 8
	store := fsmodel.NewStore()
	cfg := smallReal(n)
	heats := make([]float64, n)
	cfg.OnFinal = func(rank int, h float64) { heats[rank] = h }
	w := testWorld(t, n, 1, store, 0, nil)
	res, err := w.Run(func(e *mpi.Env) { Run(e, cfg) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != n {
		t.Fatalf("completed = %d, want %d", res.Completed, n)
	}
	var total float64
	for _, h := range heats {
		total += h
	}
	// Initial: one 1000-unit hot spot per rank; the periodic stencil with
	// per-iteration halo exchange conserves total heat.
	want := float64(n * 1000)
	if math.Abs(total-want) > 1e-6*want {
		t.Fatalf("total heat = %v, want %v", total, want)
	}
	// Heat must have spread off the hot spots: no rank keeps all 1000.
	for r, h := range heats {
		if math.Abs(h-1000) < 1 {
			t.Errorf("rank %d kept all its heat (%v): stencil or halo broken", r, h)
		}
	}
}

func TestCheckpointFilesWritten(t *testing.T) {
	const n = 8
	store := fsmodel.NewStore()
	cfg := smallReal(n)
	w := testWorld(t, n, 1, store, 0, nil)
	if _, err := w.Run(func(e *mpi.Env) { Run(e, cfg) }); err != nil {
		t.Fatal(err)
	}
	// 20 iterations with interval 10: checkpoints at 10 and 20; the set
	// at 10 was deleted after the one at 20 was written.
	iters := checkpoint.Iterations(store, "heat")
	if len(iters) != 1 || iters[0] != 20 {
		t.Fatalf("surviving checkpoint sets = %v, want [20]", iters)
	}
	if !checkpoint.SetComplete(store, "heat", 20, n) {
		t.Fatal("final checkpoint set incomplete")
	}
}

func TestFailureAbortsAndRestartResumes(t *testing.T) {
	const n = 8
	store := fsmodel.NewStore()
	cfg := smallReal(n)
	cfg.Iterations = 40
	cfg.CheckpointInterval = 10
	tr := NewTracker(n)
	cfg.Tracker = tr

	// First run: rank 3 fails mid-computation; everyone aborts.
	w := testWorld(t, n, 1, store, 0, fault.Schedule{{Rank: 3, At: vclock.Time(vclock.Millisecond)}})
	res, err := w.Run(func(e *mpi.Env) { Run(e, cfg) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 {
		t.Fatalf("failed = %d (%+v)", res.Failed, res)
	}
	if res.Aborted != n-1 {
		t.Fatalf("aborted = %d, want %d", res.Aborted, n-1)
	}

	// Between runs: the cleanup script removes incomplete sets, and the
	// exit time is persisted for continuous virtual timing.
	checkpoint.CleanIncompleteSets(store, "heat", n)
	if err := checkpoint.SaveExitTime(store, res.MaxClock); err != nil {
		t.Fatal(err)
	}

	// Second run: restart from the persisted exit time; no failure.
	start, ok := checkpoint.LoadExitTime(store)
	if !ok {
		t.Fatal("exit time missing")
	}
	tr2 := NewTracker(n)
	cfg.Tracker = tr2
	w2 := testWorld(t, n, 1, store, start, nil)
	res2, err := w2.Run(func(e *mpi.Env) { Run(e, cfg) })
	if err != nil {
		t.Fatal(err)
	}
	if res2.Completed != n {
		t.Fatalf("restart completed = %d (%+v)", res2.Completed, res2)
	}
	// Virtual time is continuous: the restarted run begins at the abort
	// time of the first.
	if res2.MinClock < start {
		t.Fatalf("restart clock %v precedes exit time %v", res2.MinClock, start)
	}
	// Ranks resumed from a checkpoint if the first run got that far;
	// either way they finished all iterations.
	for r := 0; r < n; r++ {
		if tr2.PhaseOf(r) != PhaseDone || tr2.IterOf(r) != cfg.Iterations {
			t.Errorf("rank %d: phase %v iter %d", r, tr2.PhaseOf(r), tr2.IterOf(r))
		}
	}
}

func TestRestartLoadsCheckpointData(t *testing.T) {
	const n = 8
	store := fsmodel.NewStore()
	cfg := smallReal(n)
	cfg.Iterations = 30
	cfg.CheckpointInterval = 10

	// Fail late (≈iteration 24 of 30, one iteration ≈ 38 µs) so at least
	// one checkpoint set (iteration 10 or 20) completes before the abort.
	w := testWorld(t, n, 1, store, 0, fault.Schedule{{Rank: 0, At: vclock.Time(900 * vclock.Microsecond)}})
	res, err := w.Run(func(e *mpi.Env) { Run(e, cfg) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 {
		t.Skipf("failure did not activate before completion (clocks too fast): %+v", res)
	}
	checkpoint.CleanIncompleteSets(store, "heat", n)
	sets := checkpoint.Iterations(store, "heat")
	if len(sets) == 0 {
		t.Skip("no surviving checkpoint set; failure struck too early for this test")
	}

	tr := NewTracker(n)
	cfg.Tracker = tr
	heats := make([]float64, n)
	cfg.OnFinal = func(rank int, h float64) { heats[rank] = h }
	w2 := testWorld(t, n, 1, store, res.MaxClock, nil)
	if _, err := w2.Run(func(e *mpi.Env) { Run(e, cfg) }); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		if tr.StartIterOf(r) != sets[len(sets)-1] {
			t.Errorf("rank %d restarted from %d, want %d", r, tr.StartIterOf(r), sets[len(sets)-1])
		}
	}
	// Conservation still holds across checkpoint/restore.
	var total float64
	for _, h := range heats {
		total += h
	}
	want := float64(n * 1000)
	if math.Abs(total-want) > 1e-6*want {
		t.Fatalf("total heat after restart = %v, want %v", total, want)
	}
}

func TestIncrementalCheckpointChain(t *testing.T) {
	const n = 8
	store := fsmodel.NewStore()
	cfg := smallReal(n)
	cfg.RealCompute = false
	cfg.Iterations = 60
	cfg.CheckpointInterval = 10
	cfg.CheckpointPayload = 1000
	cfg.DeltaFraction = 0.25
	w := testWorld(t, n, 1, store, 0, nil)
	res, err := w.Run(func(e *mpi.Env) { Run(e, cfg) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != n {
		t.Fatalf("completed = %d", res.Completed)
	}
	// fullEvery defaults to 4: full at 10, deltas at 20/30/40, full at 50
	// (superseding the whole 10–40 chain), delta at 60. Only the live
	// chain survives.
	iters := checkpoint.Iterations(store, "heat")
	if len(iters) != 2 || iters[0] != 50 || iters[1] != 60 {
		t.Fatalf("surviving sets = %v, want [50 60]", iters)
	}
	for r := 0; r < n; r++ {
		chain := checkpoint.Chain(store, "heat", r, 60)
		if len(chain) != 2 || chain[0] != 50 || chain[1] != 60 {
			t.Fatalf("rank %d chain = %v, want [50 60]", r, chain)
		}
	}
	if !checkpoint.SetComplete(store, "heat", 60, n) {
		t.Fatal("final delta set incomplete")
	}

	// FullEvery 1 degenerates to all-full checkpointing: each write
	// supersedes the last, so only the final set survives.
	store2 := fsmodel.NewStore()
	cfg.FullEvery = 1
	w2 := testWorld(t, n, 1, store2, 0, nil)
	if _, err := w2.Run(func(e *mpi.Env) { Run(e, cfg) }); err != nil {
		t.Fatal(err)
	}
	iters = checkpoint.Iterations(store2, "heat")
	if len(iters) != 1 || iters[0] != 60 {
		t.Fatalf("FullEvery=1 surviving sets = %v, want [60]", iters)
	}
}

func TestIncrementalRestartResumesFromChain(t *testing.T) {
	const n = 8
	store := fsmodel.NewStore()
	cfg := smallReal(n)
	cfg.RealCompute = false
	cfg.Iterations = 60
	cfg.CheckpointInterval = 10
	cfg.CheckpointPayload = 1000
	cfg.DeltaFraction = 0.25

	// Fail rank 2 mid-run, after at least one checkpoint lands.
	// One modelled iteration ≈ 40 µs: 1 ms lands near iteration 25, after
	// the sets at 10 and 20 completed.
	w := testWorld(t, n, 1, store, 0, fault.Schedule{{Rank: 2, At: vclock.Time(vclock.Millisecond)}})
	res, err := w.Run(func(e *mpi.Env) { Run(e, cfg) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 {
		t.Skipf("failure did not activate before completion: %+v", res)
	}
	checkpoint.CleanIncompleteSets(store, "heat", n)
	sets := checkpoint.Iterations(store, "heat")
	if len(sets) == 0 {
		t.Skip("no surviving checkpoint set; failure struck too early")
	}

	tr := NewTracker(n)
	cfg.Tracker = tr
	w2 := testWorld(t, n, 1, store, res.MaxClock, nil)
	res2, err := w2.Run(func(e *mpi.Env) { Run(e, cfg) })
	if err != nil {
		t.Fatal(err)
	}
	if res2.Completed != n {
		t.Fatalf("restart completed = %d", res2.Completed)
	}
	// Every rank resumed from the newest surviving set, restoring through
	// its delta chain, then re-ran to completion; the run's final chain
	// (superseding whatever it restarted from) must be intact.
	latest := sets[len(sets)-1]
	for r := 0; r < n; r++ {
		if tr.StartIterOf(r) != latest {
			t.Errorf("rank %d restarted from %d, want %d", r, tr.StartIterOf(r), latest)
		}
		if chain := checkpoint.Chain(store, "heat", r, cfg.Iterations); chain == nil {
			t.Errorf("rank %d: broken chain at final iteration %d", r, cfg.Iterations)
		}
	}
}

func TestModeledModeMatchesGeometry(t *testing.T) {
	const n = 8
	store := fsmodel.NewStore()
	cfg := smallReal(n)
	cfg.RealCompute = false
	tr := NewTracker(n)
	cfg.Tracker = tr
	w := testWorld(t, n, 1, store, 0, nil)
	res, err := w.Run(func(e *mpi.Env) { Run(e, cfg) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != n {
		t.Fatalf("completed = %d", res.Completed)
	}
	for r := 0; r < n; r++ {
		if tr.CheckpointsOf(r) != 2 {
			t.Errorf("rank %d wrote %d checkpoints, want 2", r, tr.CheckpointsOf(r))
		}
	}
	// Synthetic checkpoints validate like real ones.
	if !checkpoint.SetComplete(store, "heat", 20, n) {
		t.Fatal("synthetic final set incomplete")
	}
}

func TestModeledAndRealSameVirtualTime(t *testing.T) {
	const n = 8
	run := func(real bool) []vclock.Time {
		store := fsmodel.NewStore()
		cfg := smallReal(n)
		cfg.RealCompute = real
		w := testWorld(t, n, 1, store, 0, nil)
		res, err := w.Run(func(e *mpi.Env) { Run(e, cfg) })
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalClocks
	}
	realClocks := run(true)
	modelClocks := run(false)
	for r := range realClocks {
		// Same message sizes, same compute model, same checkpoint sizes:
		// virtual time should agree to within the checkpoint-payload
		// encoding differences (none here: same sizes).
		if realClocks[r] != modelClocks[r] {
			t.Fatalf("rank %d: real %v != modelled %v", r, realClocks[r], modelClocks[r])
		}
	}
}

func TestParallelEngineSameResult(t *testing.T) {
	const n = 8
	run := func(workers int) []vclock.Time {
		store := fsmodel.NewStore()
		cfg := smallReal(n)
		w := testWorld(t, n, workers, store, 0, nil)
		res, err := w.Run(func(e *mpi.Env) { Run(e, cfg) })
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalClocks
	}
	seq := run(1)
	par := run(4)
	for r := range seq {
		if seq[r] != par[r] {
			t.Fatalf("rank %d: seq %v != par %v", r, seq[r], par[r])
		}
	}
}

func TestPhaseString(t *testing.T) {
	for p, want := range map[Phase]string{
		PhaseInit:       "init",
		PhaseCompute:    "compute",
		PhaseHalo:       "halo-exchange",
		PhaseCheckpoint: "checkpoint",
		PhaseBarrier:    "barrier",
		PhaseDelete:     "delete-old-checkpoint",
		PhaseDone:       "done",
		Phase(42):       "Phase(42)",
	} {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int32(p), got, want)
		}
	}
}

func TestTrackerPhaseCounts(t *testing.T) {
	tr := NewTracker(4)
	tr.setPhase(0, PhaseCompute)
	tr.setPhase(1, PhaseCompute)
	tr.setPhase(2, PhaseBarrier)
	counts := tr.PhaseCounts()
	if counts[PhaseCompute] != 2 || counts[PhaseBarrier] != 1 || counts[PhaseInit] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestPackUnpackFaces(t *testing.T) {
	cfg := Config{NX: 4, NY: 6, NZ: 8, PX: 1, PY: 1, PZ: 1, Iterations: 1,
		ExchangeInterval: 1, CheckpointInterval: 1, RealCompute: true, Alpha: 1.0 / 6.0}
	s := newState(&cfg, 0)
	// Fill the interior with position-coded values.
	for k := 1; k <= s.nz; k++ {
		for j := 1; j <= s.ny; j++ {
			for i := 1; i <= s.nx; i++ {
				s.cur[s.idx(i, j, k)] = float64(i*100 + j*10 + k)
			}
		}
	}
	// The message unpacked for direction d was packed by the neighbour
	// with the opposite direction (its face that faces us). With a
	// single periodic rank the neighbour is this rank itself.
	opp := func(d direction) direction {
		for _, o := range directions {
			if o.tag == oppositeTag(d.tag) {
				return o
			}
		}
		t.Fatalf("no opposite for %+v", d)
		return d
	}
	for _, d := range directions {
		buf := s.packFace(opp(d))
		if len(buf) != s.faceSize(d) {
			t.Fatalf("face %+v: %d bytes, want %d", d, len(buf), s.faceSize(d))
		}
		s.unpackFace(d, buf)
	}
	// Spot-check wrap-around: the -x ghost plane holds the x=nx face
	// (periodic), the +y ghost plane holds the y=1 face.
	if got, want := s.cur[s.idx(0, 2, 3)], s.cur[s.idx(s.nx, 2, 3)]; got != want {
		t.Errorf("x ghost = %v, want %v", got, want)
	}
	if got, want := s.cur[s.idx(2, s.ny+1, 3)], s.cur[s.idx(2, 1, 3)]; got != want {
		t.Errorf("y ghost = %v, want %v", got, want)
	}
}

func TestEncodeRestoreRoundTrip(t *testing.T) {
	cfg := Config{NX: 4, NY: 4, NZ: 4, PX: 1, PY: 1, PZ: 1, Iterations: 1,
		ExchangeInterval: 1, CheckpointInterval: 1, RealCompute: true, Alpha: 1.0 / 6.0}
	s := newState(&cfg, 0)
	for i := range s.cur {
		s.cur[i] = float64(i) * 1.5
	}
	want := s.TotalHeat()
	buf := s.encode()
	if len(buf) != 64+8*cfg.PointsPerRank() {
		t.Fatalf("encoded %d bytes", len(buf))
	}
	s2 := newState(&cfg, 0)
	s2.restore(buf)
	if got := s2.TotalHeat(); got != want {
		t.Fatalf("restored heat %v, want %v", got, want)
	}
}

func TestNeighborPeriodic(t *testing.T) {
	cfg := Config{NX: 8, NY: 8, NZ: 8, PX: 2, PY: 2, PZ: 2, Iterations: 1,
		ExchangeInterval: 1, CheckpointInterval: 1}
	s := newState(&cfg, 0) // coords (0,0,0)
	if got := s.neighbor(1, 0, 0); got != 1 {
		t.Errorf("+x neighbour = %d, want 1", got)
	}
	if got := s.neighbor(-1, 0, 0); got != 1 {
		t.Errorf("-x neighbour (wrap) = %d, want 1", got)
	}
	if got := s.neighbor(0, 1, 0); got != 2 {
		t.Errorf("+y neighbour = %d, want 2", got)
	}
	if got := s.neighbor(0, 0, -1); got != 4 {
		t.Errorf("-z neighbour (wrap) = %d, want 4", got)
	}
}
