package powermodel

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"xsim/internal/vclock"
)

func TestPaperValid(t *testing.T) {
	if err := Paper().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	for _, m := range []Model{
		{ComputeWatts: -1},
		{ComputeWatts: 10, IdleWatts: -1},
		{ComputeWatts: 10, IdleWatts: 20},
		{ComputeWatts: 10, OverheadWatts: -5},
	} {
		if m.Validate() == nil {
			t.Errorf("Validate(%+v) should fail", m)
		}
	}
}

func TestNodeEnergy(t *testing.T) {
	m := Model{ComputeWatts: 100, IdleWatts: 40, OverheadWatts: 10}
	// 10 s busy + 5 s waiting: 100*10 + 40*5 + 10*15 = 1350 J.
	got := m.NodeEnergy(10*vclock.Second, 5*vclock.Second)
	if math.Abs(got-1350) > 1e-9 {
		t.Fatalf("NodeEnergy = %v, want 1350", got)
	}
}

func TestSystemEnergy(t *testing.T) {
	m := Model{ComputeWatts: 100, IdleWatts: 40, OverheadWatts: 0}
	busy := []vclock.Duration{10 * vclock.Second, 20 * vclock.Second}
	wait := []vclock.Duration{5 * vclock.Second, 0}
	r := m.SystemEnergy(busy, wait, 20*vclock.Second)
	wantCompute := 100.0 * 30
	wantIdle := 40.0 * 5
	if math.Abs(r.ComputeJoules-wantCompute) > 1e-9 || math.Abs(r.IdleJoules-wantIdle) > 1e-9 {
		t.Fatalf("report = %+v", r)
	}
	if math.Abs(r.TotalJoules-(wantCompute+wantIdle)) > 1e-9 {
		t.Fatalf("total = %v", r.TotalJoules)
	}
	if math.Abs(r.AvgPowerWatts-r.TotalJoules/20) > 1e-9 {
		t.Fatalf("avg power = %v", r.AvgPowerWatts)
	}
	if math.Abs(r.BusyFraction-30.0/35.0) > 1e-9 {
		t.Fatalf("busy fraction = %v", r.BusyFraction)
	}
}

func TestSystemEnergyEmpty(t *testing.T) {
	r := Paper().SystemEnergy(nil, nil, 0)
	if r.TotalJoules != 0 || r.AvgPowerWatts != 0 || r.BusyFraction != 0 {
		t.Fatalf("empty report = %+v", r)
	}
}

func TestReportString(t *testing.T) {
	r := Paper().SystemEnergy(
		[]vclock.Duration{vclock.Second}, []vclock.Duration{vclock.Second}, 2*vclock.Second)
	s := r.String()
	for _, want := range []string{"energy", "avg power", "busy fraction"} {
		if !strings.Contains(s, want) {
			t.Errorf("report string missing %q: %s", want, s)
		}
	}
}

func TestQuickEnergyProperties(t *testing.T) {
	m := Paper()
	f := func(busyS, waitS uint16) bool {
		busy := vclock.Duration(busyS) * vclock.Second
		wait := vclock.Duration(waitS) * vclock.Second
		e := m.NodeEnergy(busy, wait)
		if e < 0 {
			return false
		}
		// More busy time never costs less energy.
		return m.NodeEnergy(busy+vclock.Second, wait) >= e &&
			// Converting wait into busy never reduces energy (compute
			// draws at least idle power).
			m.NodeEnergy(busy+wait, 0) >= e-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
