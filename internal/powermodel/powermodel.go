// Package powermodel provides the power consumption model of the
// simulated system — the paper's future-work item (5) and a pillar of its
// stated goal, a toolkit that "considers architectural performance and
// resilience parameters to optimize parallel application performance
// within a given power consumption budget".
//
// The model is phase-based: each simulated node draws ComputeWatts while
// its process executes (the core engine's busy time), IdleWatts while it
// waits on communication or sleeps, and the system adds a constant
// per-node overhead (cooling, interconnect share). Combined with the
// engine's per-VP busy/wait accounting, the same simulation that yields
// Table II's execution times also yields the energy a checkpoint-interval
// choice costs — the performance/resilience/power trade-off.
package powermodel

import (
	"fmt"

	"xsim/internal/vclock"
)

// Model is the per-node power model.
type Model struct {
	// ComputeWatts is the node's draw while executing application code.
	ComputeWatts float64
	// IdleWatts is the draw while blocked on communication or sleeping.
	IdleWatts float64
	// OverheadWatts is a constant per-node draw for the whole wall
	// (virtual) duration of the run — power supplies, cooling share,
	// interconnect.
	OverheadWatts float64
}

// Paper returns a plausible model for the paper's simulated node: 100 W
// at full compute, 40 W idle, 20 W constant overhead (in the band of
// contemporary HPC compute-node measurements).
func Paper() Model {
	return Model{ComputeWatts: 100, IdleWatts: 40, OverheadWatts: 20}
}

// Validate reports a configuration error, if any.
func (m Model) Validate() error {
	if m.ComputeWatts < 0 || m.IdleWatts < 0 || m.OverheadWatts < 0 {
		return fmt.Errorf("powermodel: watts must be non-negative (%+v)", m)
	}
	if m.IdleWatts > m.ComputeWatts {
		return fmt.Errorf("powermodel: IdleWatts %g exceeds ComputeWatts %g", m.IdleWatts, m.ComputeWatts)
	}
	return nil
}

// NodeEnergy returns the energy in joules one node consumes over a run
// with the given busy and waiting virtual times. The node's powered
// duration is busy+waited (its share of the run).
func (m Model) NodeEnergy(busy, waited vclock.Duration) float64 {
	return m.ComputeWatts*busy.Seconds() +
		m.IdleWatts*waited.Seconds() +
		m.OverheadWatts*(busy+waited).Seconds()
}

// Report aggregates a run's energy.
type Report struct {
	// TotalJoules is the system energy over the run.
	TotalJoules float64
	// ComputeJoules, IdleJoules, OverheadJoules break the total down.
	ComputeJoules, IdleJoules, OverheadJoules float64
	// AvgPowerWatts is the average system draw: total energy over the
	// run's virtual duration.
	AvgPowerWatts float64
	// BusyFraction is the system-wide fraction of powered time spent
	// computing.
	BusyFraction float64
}

// SystemEnergy aggregates per-rank busy/wait times (from the engine's
// result) into a system energy report. makespan is the run's total
// virtual duration (its end time minus its start time).
func (m Model) SystemEnergy(busy, waited []vclock.Duration, makespan vclock.Duration) Report {
	var r Report
	var busySum, waitSum float64
	for i := range busy {
		busySum += busy[i].Seconds()
		waitSum += waited[i].Seconds()
	}
	r.ComputeJoules = m.ComputeWatts * busySum
	r.IdleJoules = m.IdleWatts * waitSum
	r.OverheadJoules = m.OverheadWatts * (busySum + waitSum)
	r.TotalJoules = r.ComputeJoules + r.IdleJoules + r.OverheadJoules
	if makespan > 0 {
		r.AvgPowerWatts = r.TotalJoules / makespan.Seconds()
	}
	if busySum+waitSum > 0 {
		r.BusyFraction = busySum / (busySum + waitSum)
	}
	return r
}

// String renders the report.
func (r Report) String() string {
	return fmt.Sprintf("energy %.3g J (compute %.3g J, idle %.3g J, overhead %.3g J), avg power %.3g W, busy fraction %.1f%%",
		r.TotalJoules, r.ComputeJoules, r.IdleJoules, r.OverheadJoules, r.AvgPowerWatts, 100*r.BusyFraction)
}
