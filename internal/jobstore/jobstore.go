// Package jobstore provides the campaign service's content-addressed
// result store: canonical outcome bytes filed under the canonical spec
// hash. Because keys are content addresses of deterministic results, a
// key maps to exactly one value forever — stores need no versioning, no
// invalidation, and concurrent writers of the same key are harmless
// (both write the same bytes). Two implementations: an in-memory map for
// tests and ephemeral servers, and a directory store whose entries
// survive restarts.
package jobstore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Store is a content-addressed byte store. Keys are lowercase hex
// content hashes (the spec's CacheKey); values are immutable once
// written.
type Store interface {
	// Get returns the bytes stored under key, or ok=false when absent.
	Get(key string) (data []byte, ok bool, err error)
	// Put files data under key. Re-putting an existing key is a no-op
	// (content addressing makes the values identical by construction).
	Put(key string, data []byte) error
	// Len reports the number of stored entries.
	Len() (int, error)
}

// Mem is an in-memory Store.
type Mem struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{m: make(map[string][]byte)} }

// Get implements Store.
func (s *Mem) Get(key string) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.m[key]
	return data, ok, nil
}

// Put implements Store.
func (s *Mem) Put(key string, data []byte) error {
	if err := checkKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[key]; !ok {
		s.m[key] = append([]byte(nil), data...)
	}
	return nil
}

// Len implements Store.
func (s *Mem) Len() (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m), nil
}

// Dir is a directory-backed Store: one file per key, written atomically
// (temp file + rename), so a crashed writer never leaves a torn entry
// and restarted servers resume with their cache warm.
type Dir struct {
	dir string
}

// NewDir opens (creating if needed) a directory store rooted at dir.
func NewDir(dir string) (*Dir, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	return &Dir{dir: dir}, nil
}

// path maps a key to its file. Keys are validated hex, so they are safe
// path components.
func (s *Dir) path(key string) string { return filepath.Join(s.dir, key+".json") }

// Get implements Store.
func (s *Dir) Get(key string) ([]byte, bool, error) {
	if err := checkKey(key); err != nil {
		return nil, false, err
	}
	data, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("jobstore: %w", err)
	}
	return data, true, nil
}

// Put implements Store.
func (s *Dir) Put(key string, data []byte) error {
	if err := checkKey(key); err != nil {
		return err
	}
	dst := s.path(key)
	if _, err := os.Stat(dst); err == nil {
		return nil // content-addressed: already present means already identical
	}
	tmp, err := os.CreateTemp(s.dir, "put-*")
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("jobstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("jobstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("jobstore: %w", err)
	}
	return nil
}

// Len implements Store.
func (s *Dir) Len() (int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("jobstore: %w", err)
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n, nil
}

// checkKey rejects keys that are not lowercase hex content hashes —
// anything else risks path traversal in the directory store and signals
// a caller bug everywhere.
func checkKey(key string) error {
	if key == "" {
		return fmt.Errorf("jobstore: empty key")
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("jobstore: key %q is not a lowercase hex hash", key)
		}
	}
	return nil
}
