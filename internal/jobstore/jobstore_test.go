package jobstore

import (
	"bytes"
	"testing"
)

// stores builds one of each implementation for table-driven tests.
func stores(t *testing.T) map[string]Store {
	t.Helper()
	dir, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatalf("NewDir: %v", err)
	}
	return map[string]Store{"mem": NewMem(), "dir": dir}
}

func TestStoreRoundTrip(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			key := "0123456789abcdef"
			if _, ok, err := s.Get(key); err != nil || ok {
				t.Fatalf("Get on empty store = ok=%v err=%v", ok, err)
			}
			want := []byte(`{"rows":[1,2,3]}`)
			if err := s.Put(key, want); err != nil {
				t.Fatalf("Put: %v", err)
			}
			got, ok, err := s.Get(key)
			if err != nil || !ok {
				t.Fatalf("Get = ok=%v err=%v", ok, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("Get = %q, want %q", got, want)
			}
			if n, err := s.Len(); err != nil || n != 1 {
				t.Fatalf("Len = %d, %v; want 1", n, err)
			}
		})
	}
}

func TestStorePutIsIdempotent(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			key := "feedc0de"
			if err := s.Put(key, []byte("first")); err != nil {
				t.Fatalf("Put: %v", err)
			}
			// A second Put of the same key must not clobber: content
			// addressing means the bytes are identical by construction,
			// so keeping the original is both safe and cheapest.
			if err := s.Put(key, []byte("second")); err != nil {
				t.Fatalf("re-Put: %v", err)
			}
			got, _, _ := s.Get(key)
			if string(got) != "first" {
				t.Fatalf("after re-Put, Get = %q, want %q", got, "first")
			}
			if n, _ := s.Len(); n != 1 {
				t.Fatalf("Len = %d, want 1", n)
			}
		})
	}
}

func TestStoreRejectsBadKeys(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			for _, key := range []string{"", "UPPER", "../escape", "has space", "zz.json"} {
				if err := s.Put(key, []byte("x")); err == nil {
					t.Errorf("Put(%q) accepted a non-hex key", key)
				}
			}
		})
	}
}

func TestDirSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewDir(dir)
	if err != nil {
		t.Fatalf("NewDir: %v", err)
	}
	if err := s1.Put("abc123", []byte("persisted")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	s2, err := NewDir(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got, ok, err := s2.Get("abc123")
	if err != nil || !ok || string(got) != "persisted" {
		t.Fatalf("after reopen Get = %q ok=%v err=%v", got, ok, err)
	}
}
