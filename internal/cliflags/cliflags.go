// Package cliflags centralises the flag→RunSpec construction the four
// CLI drivers used to duplicate: every binary registers the same trunk
// flags (-ranks, -workers, -pool, -seed, -v) with per-binary defaults,
// and Spec() hands back the xsim.RunSpec they describe after one shared
// validation pass. The RunSpec then flows into the experiment configs
// whose defaults() methods fill everything else — the very same defaults
// path xsim.CampaignSpec.Normalize runs for the server's JSON body — so
// a flag-built campaign and a wire-built campaign can never disagree on
// a default.
package cliflags

import (
	"flag"
	"fmt"
	"log"

	"xsim"
)

// Options selects which trunk flags a binary registers and their
// defaults.
type Options struct {
	// Ranks is the -ranks default; 0 omits the flag (drivers whose
	// campaigns do not simulate an MPI world, like xsim-bitflip).
	Ranks int
	// RanksHelp overrides the -ranks help text.
	RanksHelp string
	// Workers is the -workers default; 0 omits the flag.
	Workers int
	// Seed is the -seed default.
	Seed int64
	// NoSeed omits -seed (single-run drivers that draw nothing random).
	NoSeed bool
	// NoPool omits -pool (drivers that run exactly one simulation).
	NoPool bool
}

// Flags holds the registered trunk flag values until Spec() is called.
type Flags struct {
	opt     Options
	ranks   int
	workers int
	pool    int
	seed    int64
	prog    bool
	verbose bool
}

// Register installs the trunk flags on fs (call before fs.Parse).
func Register(fs *flag.FlagSet, opt Options) *Flags {
	f := &Flags{opt: opt}
	if opt.Ranks != 0 {
		help := opt.RanksHelp
		if help == "" {
			help = "simulated MPI ranks"
		}
		fs.IntVar(&f.ranks, "ranks", opt.Ranks, help)
	}
	if opt.Workers != 0 {
		fs.IntVar(&f.workers, "workers", opt.Workers, "engine partitions executing in parallel")
	}
	if !opt.NoPool {
		fs.IntVar(&f.pool, "pool", 0, "independent simulations in flight (0 = GOMAXPROCS/workers)")
	}
	if !opt.NoSeed {
		fs.Int64Var(&f.seed, "seed", opt.Seed, "random seed")
	}
	if opt.Ranks != 0 {
		fs.BoolVar(&f.prog, "prog", false, "run ranks as program-mode state machines (identical results, far less memory at high rank counts)")
	}
	fs.BoolVar(&f.verbose, "v", false, "print simulator informational messages")
	return f
}

// Verbose reports whether -v was set.
func (f *Flags) Verbose() bool { return f.verbose }

// Logf returns log.Printf when -v was set, else nil (the RunSpec
// convention for discarding messages).
func (f *Flags) Logf() func(format string, args ...any) {
	if f.verbose {
		return log.Printf
	}
	return nil
}

// Spec validates the trunk flags and returns the RunSpec they describe.
// Experiment-specific defaults stay zero here: each driver config's
// defaults() method fills them, identically for flag-built and
// wire-built campaigns.
func (f *Flags) Spec() (xsim.RunSpec, error) {
	if f.ranks < 0 {
		return xsim.RunSpec{}, fmt.Errorf("-ranks must be non-negative, got %d", f.ranks)
	}
	if f.workers < 0 {
		return xsim.RunSpec{}, fmt.Errorf("-workers must be non-negative, got %d", f.workers)
	}
	if f.pool < 0 {
		return xsim.RunSpec{}, fmt.Errorf("-pool must be non-negative, got %d", f.pool)
	}
	return xsim.RunSpec{
		Ranks:    f.ranks,
		Workers:  f.workers,
		Pool:     f.pool,
		Seed:     f.seed,
		ProgMode: f.prog,
		Logf:     f.Logf(),
	}, nil
}
