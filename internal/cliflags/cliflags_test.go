package cliflags

import (
	"flag"
	"io"
	"strings"
	"testing"
)

func newFlagSet() *flag.FlagSet {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestRegisterDefaultsAndParse(t *testing.T) {
	fs := newFlagSet()
	f := Register(fs, Options{Ranks: 512, Workers: 1, Seed: 133})
	if err := fs.Parse([]string{"-ranks", "64", "-pool", "2", "-v"}); err != nil {
		t.Fatal(err)
	}
	spec, err := f.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Ranks != 64 || spec.Workers != 1 || spec.Pool != 2 || spec.Seed != 133 {
		t.Fatalf("spec = %+v", spec)
	}
	if !f.Verbose() || spec.Logf == nil {
		t.Fatal("-v must enable Logf")
	}
}

func TestRegisterOmitsFlags(t *testing.T) {
	fs := newFlagSet()
	f := Register(fs, Options{NoSeed: true, NoPool: true})
	for _, name := range []string{"ranks", "workers", "seed", "pool"} {
		if fs.Lookup(name) != nil {
			t.Errorf("flag -%s registered despite being omitted", name)
		}
	}
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	spec, err := f.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Logf != nil {
		t.Fatal("Logf must be nil without -v")
	}
}

func TestSpecRejectsNegatives(t *testing.T) {
	for _, args := range [][]string{
		{"-ranks", "-1"},
		{"-workers", "-2"},
		{"-pool", "-3"},
	} {
		fs := newFlagSet()
		f := Register(fs, Options{Ranks: 64, Workers: 1})
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Spec(); err == nil || !strings.Contains(err.Error(), "non-negative") {
			t.Errorf("args %v: err = %v, want non-negative rejection", args, err)
		}
	}
}
