package softerror

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestDefaultVictimCalibration(t *testing.T) {
	m := DefaultVictim()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	p := m.KillProbability()
	// Calibrated so the expected injections-to-failure (≈1/p) is near
	// Table I's mean of 21.97.
	if p < 1.0/26 || p > 1.0/18 {
		t.Fatalf("kill probability = %v (mean %v), want ≈ 1/22", p, 1/p)
	}
}

func TestValidateErrors(t *testing.T) {
	for _, m := range []VictimModel{
		{},
		{Regions: []Region{{Name: "x", Bytes: 0, Sensitivity: 0.5}}},
		{Regions: []Region{{Name: "x", Bytes: 10, Sensitivity: -0.1}}},
		{Regions: []Region{{Name: "x", Bytes: 10, Sensitivity: 1.5}}},
	} {
		if m.Validate() == nil {
			t.Errorf("Validate(%+v) should fail", m)
		}
	}
}

func TestVictimDies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := NewVictim(DefaultVictim(), rng)
	for i := 0; i < 100000 && !v.Dead(); i++ {
		v.Inject()
	}
	if !v.Dead() {
		t.Fatal("victim survived 100000 injections")
	}
	// Further injections report killed.
	killed, _ := v.Inject()
	if !killed {
		t.Fatal("dead victim reported alive")
	}
}

func TestCampaignTableIShape(t *testing.T) {
	res, err := RunCampaign(CampaignConfig{Victims: 100, MaxInjections: 100, Seed: 2013})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if res.Victims != 100 || len(res.ToFailure) != 100 {
		t.Fatalf("victims = %d", res.Victims)
	}
	// Table I shape: mean ≈ 22, min small, max large, right-skewed
	// (median < mean), stddev comparable to the mean.
	if s.Mean < 15 || s.Mean > 30 {
		t.Errorf("mean = %v, want ≈ 22", s.Mean)
	}
	if s.Min > 3 {
		t.Errorf("min = %v, want small", s.Min)
	}
	if s.Max < 50 {
		t.Errorf("max = %v, want large", s.Max)
	}
	if s.Median >= s.Mean {
		t.Errorf("median %v >= mean %v: not right-skewed", s.Median, s.Mean)
	}
	if s.StdDev < s.Mean/2 || s.StdDev > 2*s.Mean {
		t.Errorf("stddev = %v vs mean %v", s.StdDev, s.Mean)
	}
	// Total = sum of per-victim counts.
	sum := 0
	for _, n := range res.ToFailure {
		sum += n
	}
	if sum != res.Injections {
		t.Errorf("injections = %d, sum = %d", res.Injections, sum)
	}
}

func TestCampaignDeterministic(t *testing.T) {
	cfg := CampaignConfig{Victims: 50, MaxInjections: 100, Seed: 7}
	a, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Injections != b.Injections {
		t.Fatalf("non-deterministic: %d vs %d injections", a.Injections, b.Injections)
	}
	for i := range a.ToFailure {
		if a.ToFailure[i] != b.ToFailure[i] {
			t.Fatalf("victim %d: %d vs %d", i, a.ToFailure[i], b.ToFailure[i])
		}
	}
}

func TestCampaignConfigErrors(t *testing.T) {
	if _, err := RunCampaign(CampaignConfig{Victims: 0, MaxInjections: 10}); err == nil {
		t.Error("zero victims should fail")
	}
	if _, err := RunCampaign(CampaignConfig{Victims: 10, MaxInjections: 0}); err == nil {
		t.Error("zero cap should fail")
	}
	bad := VictimModel{Regions: []Region{{Name: "x", Bytes: -1}}}
	if _, err := RunCampaign(CampaignConfig{Victims: 10, MaxInjections: 10, Model: bad}); err == nil {
		t.Error("bad model should fail")
	}
}

func TestCampaignCapRespected(t *testing.T) {
	// An insensitive victim survives; counts are capped.
	m := VictimModel{Regions: []Region{{Name: "cold", Bytes: 1024, Sensitivity: 0}}}
	res, err := RunCampaign(CampaignConfig{Victims: 5, MaxInjections: 37, Seed: 1, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	if res.Survived != 5 {
		t.Fatalf("survived = %d", res.Survived)
	}
	for _, n := range res.ToFailure {
		if n != 37 {
			t.Fatalf("capped count = %d, want 37", n)
		}
	}
}

func TestKillsByRegionBias(t *testing.T) {
	res, err := RunCampaign(CampaignConfig{Victims: 2000, MaxInjections: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The heap is by far the largest region; despite its low
	// sensitivity it should account for a large share of kills, and the
	// tiny register file for almost none in absolute terms.
	if res.KillsByRegion["heap"] < res.KillsByRegion["registers"] {
		t.Errorf("kills by region look wrong: %v", res.KillsByRegion)
	}
	total := 0
	for _, k := range res.KillsByRegion {
		total += k
	}
	if total+res.Survived != res.Victims {
		t.Errorf("kills %d + survivors %d != victims %d", total, res.Survived, res.Victims)
	}
}

func TestTableRendering(t *testing.T) {
	res, err := RunCampaign(CampaignConfig{Victims: 100, MaxInjections: 100, Seed: 2013})
	if err != nil {
		t.Fatal(err)
	}
	table := res.Table()
	for _, want := range []string{"Victims", "Injections", "Minimum", "Maximum", "Mean", "Median", "Mode", "Std.Dev.", "100"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestFlipFloat64(t *testing.T) {
	vals := []float64{1.0, 2.0, 3.0}
	old, new := FlipFloat64(vals, 1, 51)
	if old != 2.0 {
		t.Fatalf("old = %v", old)
	}
	if vals[1] != new || new == old {
		t.Fatalf("flip not applied: %v", vals)
	}
	// Flipping the same bit again restores the value.
	_, back := FlipFloat64(vals, 1, 51)
	if back != 2.0 {
		t.Fatalf("double flip = %v, want 2.0", back)
	}
}

func TestFlipFloat64BitRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bit 64 should panic")
		}
	}()
	FlipFloat64([]float64{1}, 0, 64)
}

func TestQuickFlipInvolution(t *testing.T) {
	f := func(v float64, bit uint8) bool {
		if math.IsNaN(v) {
			return true
		}
		b := int(bit % 64)
		vals := []float64{v}
		FlipFloat64(vals, 0, b)
		FlipFloat64(vals, 0, b)
		return vals[0] == v || (math.IsNaN(vals[0]) && math.IsNaN(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCampaignMeanTracksProbability(t *testing.T) {
	// Property: a higher-sensitivity victim dies in fewer injections on
	// average.
	low := VictimModel{Regions: []Region{{Name: "m", Bytes: 1024, Sensitivity: 0.02}}}
	high := VictimModel{Regions: []Region{{Name: "m", Bytes: 1024, Sensitivity: 0.2}}}
	a, err := RunCampaign(CampaignConfig{Victims: 300, MaxInjections: 1000, Seed: 5, Model: low})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCampaign(CampaignConfig{Victims: 300, MaxInjections: 1000, Seed: 5, Model: high})
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary.Mean <= b.Summary.Mean {
		t.Fatalf("mean(low)=%v should exceed mean(high)=%v", a.Summary.Mean, b.Summary.Mean)
	}
}
