// Package softerror reproduces the fault (bit flip) injection experiments
// the paper reports from the Finject framework (Table I): bit flips are
// injected into the process image and registers of a victim application
// until the victim fails, over many victim instances, with the number of
// injections to failure summarised by min/max/mean/median/mode/stddev.
//
// Finject used ptrace(2) against real victim processes; here the victim is
// a process-image model with memory regions of different sensitivity — a
// flip kills the victim only if it lands in state that is still live
// (read before being overwritten), which is what makes most flips benign.
// The region sizes and sensitivities are calibrated so that the
// injections-to-failure distribution matches Table I's shape (mean ≈ 22,
// right-skewed, minimum 1, maximum near the 100-injection cap).
//
// The package also provides the building blocks of the paper's named
// future work — a soft-error injector for simulated MPI processes — via
// FlipFloat64, which corrupts application data in place so silent data
// corruption propagation can be studied (as in the redMPI work the paper
// discusses).
package softerror

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"xsim/internal/runner"
	"xsim/internal/stats"
)

// Region is one part of a victim's process image.
type Region struct {
	// Name identifies the region ("registers", "stack", ...).
	Name string
	// Bytes is the region's size; injection sites are chosen uniformly
	// over all bytes of the image.
	Bytes int
	// Sensitivity is the probability that a bit flip in this region hits
	// live state and kills the victim (registers are hot, most of the
	// heap is cold or masked by the application's structure).
	Sensitivity float64
}

// VictimModel describes a victim application's process image.
type VictimModel struct {
	Regions []Region
}

// DefaultVictim returns the calibrated victim model: a small register
// file that is almost always live, a moderately sensitive stack and code
// segment, and a large mostly-cold heap. The weighted per-flip kill
// probability is ≈ 1/22, matching Table I's mean of 21.97 injections to
// failure.
func DefaultVictim() VictimModel {
	return VictimModel{Regions: []Region{
		{Name: "registers", Bytes: 256, Sensitivity: 0.50},
		{Name: "stack", Bytes: 64 * 1024, Sensitivity: 0.12},
		{Name: "code", Bytes: 128 * 1024, Sensitivity: 0.15},
		{Name: "data", Bytes: 256 * 1024, Sensitivity: 0.044},
		{Name: "heap", Bytes: 1024 * 1024, Sensitivity: 0.029},
	}}
}

// Validate reports a configuration error, if any.
func (m VictimModel) Validate() error {
	if len(m.Regions) == 0 {
		return fmt.Errorf("softerror: victim has no regions")
	}
	for _, r := range m.Regions {
		if r.Bytes <= 0 {
			return fmt.Errorf("softerror: region %q has %d bytes", r.Name, r.Bytes)
		}
		if r.Sensitivity < 0 || r.Sensitivity > 1 {
			return fmt.Errorf("softerror: region %q sensitivity %g outside [0,1]", r.Name, r.Sensitivity)
		}
	}
	return nil
}

// TotalBytes returns the image size.
func (m VictimModel) TotalBytes() int {
	total := 0
	for _, r := range m.Regions {
		total += r.Bytes
	}
	return total
}

// KillProbability returns the per-flip probability of killing the victim
// (region sizes weighting region sensitivities).
func (m VictimModel) KillProbability() float64 {
	total := float64(m.TotalBytes())
	var p float64
	for _, r := range m.Regions {
		p += float64(r.Bytes) / total * r.Sensitivity
	}
	return p
}

// Victim is one running victim instance accepting injections.
type Victim struct {
	model VictimModel
	rng   *rand.Rand
	dead  bool
}

// NewVictim starts a victim instance.
func NewVictim(model VictimModel, rng *rand.Rand) *Victim {
	return &Victim{model: model, rng: rng}
}

// Inject flips one random bit in the victim's image. It reports whether
// the victim failed and which region the flip landed in.
func (v *Victim) Inject() (killed bool, region string) {
	if v.dead {
		return true, ""
	}
	site := v.rng.Intn(v.model.TotalBytes())
	for _, r := range v.model.Regions {
		if site < r.Bytes {
			if v.rng.Float64() < r.Sensitivity {
				v.dead = true
				return true, r.Name
			}
			return false, r.Name
		}
		site -= r.Bytes
	}
	panic("softerror: injection site out of image")
}

// Dead reports whether the victim failed.
func (v *Victim) Dead() bool { return v.dead }

// CampaignConfig parameterises an injection campaign.
type CampaignConfig struct {
	// Victims is the number of victim application instances (Table I
	// uses 100).
	Victims int
	// MaxInjections caps the injections per victim (Table I's arbitrary
	// maximum of 100).
	MaxInjections int
	// Seed makes the campaign deterministic.
	Seed int64
	// Model is the victim model (DefaultVictim when zero).
	Model VictimModel
	// Pool caps the number of victims injected concurrently (0 = one per
	// processor); each victim's random sequence depends only on Seed and
	// its index, so the result is identical at any pool size.
	Pool int
	// Logf receives campaign progress messages (nil discards them).
	Logf func(format string, args ...any)
	// OnProgress, when set, receives the campaign pool's serialized
	// per-victim progress reports.
	OnProgress func(runner.Progress)
}

// CampaignResult summarises an injection campaign in Table I's terms.
type CampaignResult struct {
	// Victims is the number of victim instances.
	Victims int
	// Injections is the number of injected faults across all runs.
	Injections int
	// ToFailure holds each victim's injections-to-failure count
	// (victims surviving the cap record the cap).
	ToFailure []int
	// Survived counts victims that outlived the injection cap.
	Survived int
	// KillsByRegion counts fatal flips per region.
	KillsByRegion map[string]int
	// Summary are the Table I statistics over ToFailure.
	Summary stats.Summary
}

// RunCampaign executes the injection campaign; it is RunCampaignContext
// without cancellation.
func RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	return RunCampaignContext(context.Background(), cfg)
}

// victimOutcome is one victim's campaign contribution. A zero value marks
// a victim that never ran (campaign cancelled first).
type victimOutcome struct {
	injections int
	killed     bool
	region     string
}

// RunCampaignContext executes the injection campaign, fanning the
// independent victims out across the campaign pool. Each victim draws
// from its own rand.Rand seeded by Seed and the victim index, and the
// summary merges outcomes in victim order, so the result is identical to
// the sequential campaign at any pool size. Cancellation returns the
// outcomes of the victims that finished.
func RunCampaignContext(ctx context.Context, cfg CampaignConfig) (*CampaignResult, error) {
	if cfg.Victims <= 0 {
		return nil, fmt.Errorf("softerror: Victims must be positive")
	}
	if cfg.MaxInjections <= 0 {
		return nil, fmt.Errorf("softerror: MaxInjections must be positive")
	}
	model := cfg.Model
	if len(model.Regions) == 0 {
		model = DefaultVictim()
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}

	tasks := make([]runner.Task[victimOutcome], cfg.Victims)
	for i := 0; i < cfg.Victims; i++ {
		seed := cfg.Seed + int64(i)
		tasks[i] = runner.Task[victimOutcome]{
			Spec: runner.Spec{Index: i, Label: fmt.Sprintf("victim=%d", i), Seed: seed},
			Run: func(ctx context.Context) (victimOutcome, error) {
				v := NewVictim(model, rand.New(rand.NewSource(seed)))
				var out victimOutcome
				for out.injections < cfg.MaxInjections {
					out.injections++
					killed, region := v.Inject()
					if killed {
						out.killed, out.region = true, region
						break
					}
				}
				return out, nil
			},
		}
	}
	outcomes, _, err := runner.Run(ctx, runner.Config{Pool: cfg.Pool, Logf: cfg.Logf, OnProgress: cfg.OnProgress}, tasks)

	res := &CampaignResult{
		Victims:       cfg.Victims,
		KillsByRegion: make(map[string]int),
	}
	for _, out := range outcomes {
		if out.injections == 0 {
			continue // cancelled before this victim ran
		}
		res.Injections += out.injections
		if out.killed {
			res.KillsByRegion[out.region]++
		} else {
			res.Survived++
		}
		res.ToFailure = append(res.ToFailure, out.injections)
	}
	res.Summary = stats.SummarizeInts(res.ToFailure)
	return res, err
}

// Table renders the campaign in the layout of the paper's Table I.
func (r *CampaignResult) Table() string {
	s := r.Summary
	rows := [][]string{
		{"Victims", fmt.Sprintf("%d", r.Victims), "# of victim application instances"},
		{"Injections", fmt.Sprintf("%d", r.Injections), "# of injected failures for all runs"},
		{"Minimum", fmt.Sprintf("%.0f", s.Min), "# of injections to victim failure"},
		{"Maximum", fmt.Sprintf("%.0f", s.Max), "# of injections to victim failure"},
		{"Mean", fmt.Sprintf("%.2f", s.Mean), "# of injections to victim failure"},
		{"Median", fmt.Sprintf("%.0f", s.Median), "# of injections to victim failure"},
		{"Mode", fmt.Sprintf("%.0f", s.Mode), "# of injections to victim failure"},
		{"Std.Dev.", fmt.Sprintf("%.2f", s.StdDev), "# of injections to victim failure"},
	}
	return stats.Table([]string{"Field", "Value", "Description"}, rows)
}

// Histogram renders the injections-to-failure distribution as a text
// histogram (the shape behind Table I's summary statistics).
func (r *CampaignResult) Histogram(buckets, barWidth int) string {
	xs := make([]float64, len(r.ToFailure))
	for i, n := range r.ToFailure {
		xs[i] = float64(n)
	}
	return stats.Histogram(xs, buckets, barWidth)
}

// Percentile returns the p-th percentile of injections-to-failure.
func (r *CampaignResult) Percentile(p float64) float64 {
	xs := make([]float64, len(r.ToFailure))
	for i, n := range r.ToFailure {
		xs[i] = float64(n)
	}
	return stats.Percentile(xs, p)
}

// FlipFloat64 flips one bit of a float64 in place and returns the old and
// new values — the building block of soft-error injection into simulated
// application state (memory bit flips in MPI application data, as studied
// by the redMPI work the paper discusses). bit must be in [0, 64).
func FlipFloat64(vals []float64, idx, bit int) (old, new float64) {
	if bit < 0 || bit >= 64 {
		panic(fmt.Sprintf("softerror: bit %d outside [0,64)", bit))
	}
	old = vals[idx]
	new = math.Float64frombits(math.Float64bits(old) ^ (1 << uint(bit)))
	vals[idx] = new
	return old, new
}
