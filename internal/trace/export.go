package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"xsim/internal/stats"
	"xsim/internal/vclock"
)

// This file renders the recorded timeline for external tooling. All string
// formatting lives here, on the export path; the record path stores only
// typed fields.

// DetailString returns the event's human-readable detail: the explicit
// Detail if set, otherwise text derived from the typed fields.
func (e *Event) DetailString() string {
	if e.Detail != "" {
		return e.Detail
	}
	switch e.Kind {
	case KindSend:
		proto := "eager"
		if e.Flags&FlagRendezvous != 0 {
			proto = "rendezvous"
		}
		return fmt.Sprintf("dst=%d tag=%d size=%d %s", e.Peer, e.Tag, e.Size, proto)
	case KindRecvPost:
		return fmt.Sprintf("src=%d tag=%d", e.Peer, e.Tag)
	case KindComplete:
		op := "recv"
		if e.Flags&FlagSendOp != 0 {
			op = "send"
		}
		if e.Flags&FlagError != 0 {
			return fmt.Sprintf("%s peer=%d err", op, e.Peer)
		}
		return fmt.Sprintf("%s peer=%d", op, e.Peer)
	case KindDetect:
		return fmt.Sprintf("failed=%d failed_at=%v", e.Peer, vclock.Time(e.Aux))
	case KindAbort:
		return fmt.Sprintf("code=%d", e.Aux)
	default:
		return ""
	}
}

// WriteCSV renders the time-ordered events as CSV with a header row,
// quoting through encoding/csv so detail strings containing commas,
// quotes, or newlines round-trip through standard readers. If events were
// dropped, a trailing marker row (kind "dropped") records the count so a
// truncated timeline is never mistaken for a complete one.
func (b *Buffer) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "rank", "kind", "peer", "tag", "size", "detail"}); err != nil {
		return err
	}
	evs := b.snapshot()
	row := make([]string, 7)
	for i := range evs {
		ev := &evs[i]
		row[0] = strconv.FormatFloat(ev.At.Seconds(), 'f', 9, 64)
		row[1] = strconv.Itoa(int(ev.Rank))
		row[2] = ev.Kind.String()
		row[3] = strconv.Itoa(int(ev.Peer))
		row[4] = strconv.Itoa(int(ev.Tag))
		row[5] = strconv.FormatInt(ev.Size, 10)
		row[6] = ev.DetailString()
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	if d := b.Dropped(); d > 0 {
		last := 0.0
		if len(evs) > 0 {
			last = evs[len(evs)-1].At.Seconds()
		}
		row[0] = strconv.FormatFloat(last, 'f', 9, 64)
		row[1] = "-1"
		row[2] = "dropped"
		row[3] = "-1"
		row[4] = "-1"
		row[5] = strconv.Itoa(d)
		row[6] = fmt.Sprintf("%d events dropped by the buffer bound; timeline is truncated", d)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// object variant loadable by Perfetto and chrome://tracing).
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders the timeline in the Chrome trace-event JSON
// format, one track (tid) per rank, each event as a thread-scoped instant.
// Load the file in Perfetto (ui.perfetto.dev) or chrome://tracing. A
// trailing process-scoped "dropped" instant marks truncated timelines.
func (b *Buffer) WriteChromeTrace(w io.Writer) error {
	evs := b.snapshot()
	if _, err := io.WriteString(w, `{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	first := true
	emit := func(ce chromeEvent) error {
		if !first {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		first = false
		// Encode writes a trailing newline, which keeps the array
		// readable without a second buffer.
		return enc.Encode(ce)
	}
	// Name the per-rank tracks once.
	seen := make(map[int32]bool)
	for i := range evs {
		r := evs[i].Rank
		if seen[r] {
			continue
		}
		seen[r] = true
		name := "rank " + strconv.Itoa(int(r))
		if r < 0 {
			name = "simulator"
		}
		if err := emit(chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   0,
			TID:   int(r),
			Args:  map[string]any{"name": name},
		}); err != nil {
			return err
		}
	}
	for i := range evs {
		ev := &evs[i]
		ce := chromeEvent{
			Name:  ev.Kind.String(),
			Phase: "i",
			TS:    float64(ev.At) / 1e3, // ns → µs
			PID:   0,
			TID:   int(ev.Rank),
			Scope: "t",
			Args:  map[string]any{"detail": ev.DetailString()},
		}
		if ev.Peer >= 0 {
			ce.Args["peer"] = ev.Peer
		}
		if ev.Size > 0 {
			ce.Args["size"] = ev.Size
		}
		if err := emit(ce); err != nil {
			return err
		}
	}
	// Counter tracks: one Chrome counter event ("C") per sample, stably
	// sorted by time so tracks graph monotonically in Perfetto.
	ctrs := b.Counters()
	sort.SliceStable(ctrs, func(i, j int) bool { return ctrs[i].At < ctrs[j].At })
	for _, c := range ctrs {
		if err := emit(chromeEvent{
			Name:  c.Name,
			Phase: "C",
			TS:    float64(c.At) / 1e3, // ns → µs
			PID:   0,
			Args:  map[string]any{"value": c.Value},
		}); err != nil {
			return err
		}
	}
	if d := b.Dropped(); d > 0 {
		last := 0.0
		if len(evs) > 0 {
			last = float64(evs[len(evs)-1].At) / 1e3
		}
		if err := emit(chromeEvent{
			Name:  "dropped",
			Phase: "i",
			TS:    last,
			PID:   0,
			TID:   -1,
			Scope: "p",
			Args:  map[string]any{"count": d, "detail": "timeline truncated by the buffer bound"},
		}); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}

// RankSummary aggregates one rank's recorded events.
type RankSummary struct {
	Rank      int
	Events    int
	Sends     int
	RecvPosts int
	Completes int
	Errors    int
	Failures  int
	Detects   int
	Aborts    int
	First     vclock.Time
	Last      vclock.Time
}

// Summary holds the per-rank breakdown of the retained timeline plus the
// drop count, for the shutdown report.
type Summary struct {
	PerRank []RankSummary // ordered by rank
	Total   int
	Dropped int
}

// Summarize computes the per-rank summary of the retained events.
func (b *Buffer) Summarize() Summary {
	byRank := make(map[int32]*RankSummary)
	var order []int32
	evs := b.snapshot()
	for i := range evs {
		ev := &evs[i]
		rs := byRank[ev.Rank]
		if rs == nil {
			rs = &RankSummary{Rank: int(ev.Rank), First: ev.At}
			byRank[ev.Rank] = rs
			order = append(order, ev.Rank)
		}
		rs.Events++
		rs.Last = ev.At
		if ev.At < rs.First {
			rs.First = ev.At
		}
		switch ev.Kind {
		case KindSend:
			rs.Sends++
		case KindRecvPost:
			rs.RecvPosts++
		case KindComplete:
			rs.Completes++
			if ev.Flags&FlagError != 0 {
				rs.Errors++
			}
		case KindFailure:
			rs.Failures++
		case KindDetect:
			rs.Detects++
		case KindAbort:
			rs.Aborts++
		}
	}
	out := Summary{Total: len(evs), Dropped: b.Dropped()}
	for _, r := range order {
		out.PerRank = append(out.PerRank, *byRank[r])
	}
	sort.Slice(out.PerRank, func(i, j int) bool { return out.PerRank[i].Rank < out.PerRank[j].Rank })
	return out
}

// WriteSummary renders the per-rank summary as a fixed-width table in the
// style of the paper's shutdown statistics, followed by totals and, when
// events were dropped, an explicit truncation line.
func (b *Buffer) WriteSummary(w io.Writer) error {
	sum := b.Summarize()
	header := []string{"rank", "events", "sends", "recv-posts", "completes", "errors", "failures", "detects", "aborts", "first", "last"}
	rows := make([][]string, 0, len(sum.PerRank))
	for _, r := range sum.PerRank {
		rows = append(rows, []string{
			strconv.Itoa(r.Rank),
			strconv.Itoa(r.Events),
			strconv.Itoa(r.Sends),
			strconv.Itoa(r.RecvPosts),
			strconv.Itoa(r.Completes),
			strconv.Itoa(r.Errors),
			strconv.Itoa(r.Failures),
			strconv.Itoa(r.Detects),
			strconv.Itoa(r.Aborts),
			r.First.String(),
			r.Last.String(),
		})
	}
	var sb strings.Builder
	sb.WriteString(stats.Table(header, rows))
	fmt.Fprintf(&sb, "%d events retained", sum.Total)
	if sum.Dropped > 0 {
		fmt.Fprintf(&sb, ", %d DROPPED (timeline truncated)", sum.Dropped)
	}
	sb.WriteByte('\n')
	_, err := io.WriteString(w, sb.String())
	return err
}
