package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"xsim/internal/vclock"
)

func TestRecordAndOrder(t *testing.T) {
	b := New(0)
	b.Record(1, vclock.TimeFromSeconds(2), "send", "x")
	b.Record(0, vclock.TimeFromSeconds(1), "recv-post", "y")
	b.Record(0, vclock.TimeFromSeconds(2), "complete", "z")
	evs := b.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d", len(evs))
	}
	// Ordered by (time, rank, seq).
	if evs[0].Kind != "recv-post" || evs[1].Rank != 0 || evs[2].Rank != 1 {
		t.Fatalf("order wrong: %+v", evs)
	}
}

func TestBound(t *testing.T) {
	b := New(2)
	for i := 0; i < 5; i++ {
		b.Record(0, vclock.Time(i), "e", "")
	}
	if b.Len() != 2 || b.Dropped() != 3 {
		t.Fatalf("len=%d dropped=%d", b.Len(), b.Dropped())
	}
}

func TestFiltersAndCounts(t *testing.T) {
	b := New(0)
	b.Record(0, 1, "send", "")
	b.Record(1, 2, "send", "")
	b.Record(0, 3, "abort", "")
	if got := b.OfKind("send"); len(got) != 2 {
		t.Fatalf("OfKind = %d", len(got))
	}
	if got := b.OfRank(0); len(got) != 2 {
		t.Fatalf("OfRank = %d", len(got))
	}
	counts := b.Counts()
	if counts["send"] != 2 || counts["abort"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestWriteCSV(t *testing.T) {
	b := New(0)
	b.Record(3, vclock.TimeFromSeconds(1.5), "send", `dst=4 tag=0`)
	var buf bytes.Buffer
	if err := b.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "time_s,rank,kind,detail\n") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "1.500000000,3,send") {
		t.Fatalf("missing row: %q", out)
	}
}

func TestConcurrentRecord(t *testing.T) {
	b := New(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.Record(g, vclock.Time(i), "e", "")
			}
		}(g)
	}
	wg.Wait()
	if b.Len() != 800 {
		t.Fatalf("len = %d", b.Len())
	}
}
