package trace

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"xsim/internal/vclock"
)

func TestRecordAndOrder(t *testing.T) {
	b := New(0)
	b.Record(Event{Rank: 1, At: vclock.TimeFromSeconds(2), Kind: KindSend})
	b.Record(Event{Rank: 0, At: vclock.TimeFromSeconds(1), Kind: KindRecvPost})
	b.Record(Event{Rank: 0, At: vclock.TimeFromSeconds(2), Kind: KindComplete})
	evs := b.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d", len(evs))
	}
	// Ordered by (time, rank, seq).
	if evs[0].Kind != KindRecvPost || evs[1].Rank != 0 || evs[2].Rank != 1 {
		t.Fatalf("order wrong: %+v", evs)
	}
}

func TestPerRankOrderStable(t *testing.T) {
	// Events of one rank at the same timestamp must export in record
	// order (per-rank streams land in one shard, so Seq is exact).
	b := New(0)
	for i := 0; i < 10; i++ {
		b.Record(Event{Rank: 3, At: 5, Kind: KindUser, Size: int64(i)})
	}
	evs := b.Events()
	for i, ev := range evs {
		if ev.Size != int64(i) {
			t.Fatalf("event %d out of order: %+v", i, evs)
		}
	}
}

func TestRingBound(t *testing.T) {
	b := New(2)
	for i := 0; i < 5; i++ {
		b.Record(Event{Rank: 0, At: vclock.Time(i), Kind: KindUser})
	}
	if b.Len() != 2 || b.Dropped() != 3 {
		t.Fatalf("len=%d dropped=%d", b.Len(), b.Dropped())
	}
	// A ring keeps the most recent events.
	evs := b.Events()
	if evs[0].At != 3 || evs[1].At != 4 {
		t.Fatalf("ring should retain the newest events: %+v", evs)
	}
	// Counts cover everything recorded, including overwritten events.
	if got := b.Counts()["user"]; got != 5 {
		t.Fatalf("counts = %d, want 5", got)
	}
}

// TestDropMarkerAtMaxOne is the satellite regression: with max=1 every
// export must still disclose the truncation.
func TestDropMarkerAtMaxOne(t *testing.T) {
	b := New(1)
	b.Record(Event{Rank: 0, At: 1, Kind: KindSend, Peer: 1})
	b.Record(Event{Rank: 0, At: 2, Kind: KindSend, Peer: 1})
	if b.Len() != 1 || b.Dropped() != 1 {
		t.Fatalf("len=%d dropped=%d", b.Len(), b.Dropped())
	}

	var buf bytes.Buffer
	if err := b.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	last := rows[len(rows)-1]
	if last[2] != "dropped" || last[5] != "1" {
		t.Fatalf("missing CSV drop marker: %v", rows)
	}

	buf.Reset()
	if err := b.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"dropped"`) {
		t.Fatalf("missing chrome drop marker: %s", buf.String())
	}

	buf.Reset()
	if err := b.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1 DROPPED") {
		t.Fatalf("summary must report dropped events: %s", buf.String())
	}
	if s := b.Summarize(); s.Dropped != 1 {
		t.Fatalf("Summarize().Dropped = %d", s.Dropped)
	}
}

func TestFiltersAndCounts(t *testing.T) {
	b := New(0)
	b.Record(Event{Rank: 0, At: 1, Kind: KindSend})
	b.Record(Event{Rank: 1, At: 2, Kind: KindSend})
	b.Record(Event{Rank: 0, At: 3, Kind: KindAbort})
	if got := b.OfKind(KindSend); len(got) != 2 {
		t.Fatalf("OfKind = %d", len(got))
	}
	if got := b.OfRank(0); len(got) != 2 {
		t.Fatalf("OfRank = %d", len(got))
	}
	counts := b.Counts()
	if counts["send"] != 2 || counts["abort"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

// TestWriteCSVHostileDetails is the satellite golden test: detail strings
// containing commas, quotes, newlines, and non-ASCII must round-trip
// through a standard CSV reader (the old %q escaping produced \" and
// \uXXXX sequences standard readers misparse).
func TestWriteCSVHostileDetails(t *testing.T) {
	hostile := []string{
		`plain`,
		`comma, separated, values`,
		`a "quoted" detail`,
		"line\nbreak",
		`mixed "q", and
newline — ünïcødé`,
	}
	b := New(0)
	for i, d := range hostile {
		b.Record(Event{Rank: 2, At: vclock.Time(i + 1), Kind: KindUser, Detail: d})
	}
	var buf bytes.Buffer
	if err := b.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatalf("standard CSV reader rejected our output: %v\n%s", err, buf.String())
	}
	if len(rows) != len(hostile)+1 {
		t.Fatalf("rows = %d, want %d", len(rows), len(hostile)+1)
	}
	if want := []string{"time_s", "rank", "kind", "peer", "tag", "size", "detail"}; strings.Join(rows[0], "|") != strings.Join(want, "|") {
		t.Fatalf("header = %v", rows[0])
	}
	for i, d := range hostile {
		if got := rows[i+1][6]; got != d {
			t.Errorf("detail %d did not round-trip: %q != %q", i, got, d)
		}
	}
}

func TestWriteCSVDerivedDetails(t *testing.T) {
	b := New(0)
	b.Record(Event{Rank: 3, At: vclock.TimeFromSeconds(1.5), Kind: KindSend, Peer: 4, Tag: 7, Size: 512, Flags: FlagRendezvous})
	var buf bytes.Buffer
	if err := b.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "time_s,rank,kind,peer,tag,size,detail\n") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "1.500000000,3,send,4,7,512,dst=4 tag=7 size=512 rendezvous") {
		t.Fatalf("missing derived row: %q", out)
	}
}

// TestChromeTraceFormat validates the JSON export against the trace-event
// format: a traceEvents array whose entries carry name/ph/ts/pid/tid, one
// tid per rank, with thread-name metadata.
func TestChromeTraceFormat(t *testing.T) {
	b := New(0)
	b.Record(Event{Rank: 0, At: vclock.TimeFromSeconds(1), Kind: KindSend, Peer: 1, Size: 64})
	b.Record(Event{Rank: 1, At: vclock.TimeFromSeconds(2), Kind: KindRecvPost, Peer: 0})
	b.Record(Event{Rank: 1, At: vclock.TimeFromSeconds(3), Kind: KindComplete, Peer: 0, Detail: `hostile "detail"`})
	var buf bytes.Buffer
	if err := b.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    *float64       `json:"ts"`
			PID   *int           `json:"pid"`
			TID   *int           `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	tids := make(map[int]bool)
	var meta, instants int
	for _, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.Phase == "" || ev.PID == nil || ev.TID == nil {
			t.Fatalf("event missing required fields: %+v", ev)
		}
		switch ev.Phase {
		case "M":
			meta++
		case "i":
			instants++
			if ev.TS == nil {
				t.Fatalf("instant without ts: %+v", ev)
			}
			tids[*ev.TID] = true
		}
	}
	if instants != 3 || meta != 2 {
		t.Fatalf("instants=%d meta=%d", instants, meta)
	}
	if !tids[0] || !tids[1] {
		t.Fatalf("expected one track per rank, got tids %v", tids)
	}
}

func TestChromeTraceCounters(t *testing.T) {
	b := New(0)
	b.Record(Event{Rank: 0, At: vclock.TimeFromSeconds(1), Kind: KindSend, Peer: 1})
	b.RecordCounter("carriers-hi", vclock.TimeFromSeconds(2), 7)
	b.RecordCounter("ready-hi", vclock.TimeFromSeconds(1), 3)
	var buf bytes.Buffer
	if err := b.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	var counters []string
	lastTS := -1.0
	for _, ev := range doc.TraceEvents {
		if ev.Phase != "C" {
			continue
		}
		counters = append(counters, ev.Name)
		if ev.TS < lastTS {
			t.Fatalf("counter samples out of time order: %+v", doc.TraceEvents)
		}
		lastTS = ev.TS
		if _, ok := ev.Args["value"].(float64); !ok {
			t.Fatalf("counter without numeric value: %+v", ev)
		}
	}
	if len(counters) != 2 || counters[0] != "ready-hi" || counters[1] != "carriers-hi" {
		t.Fatalf("counter tracks = %v", counters)
	}
	if got := b.Counters(); len(got) != 2 {
		t.Fatalf("Counters() = %v", got)
	}
}

func TestSummaryTable(t *testing.T) {
	b := New(0)
	b.Record(Event{Rank: 0, At: 1, Kind: KindSend, Peer: 1})
	b.Record(Event{Rank: 1, At: 2, Kind: KindRecvPost, Peer: 0})
	b.Record(Event{Rank: 1, At: 3, Kind: KindComplete, Peer: 0, Flags: FlagError})
	sum := b.Summarize()
	if len(sum.PerRank) != 2 || sum.PerRank[0].Rank != 0 || sum.PerRank[1].Errors != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	var buf bytes.Buffer
	if err := b.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rank") || !strings.Contains(buf.String(), "3 events retained") {
		t.Fatalf("summary table: %s", buf.String())
	}
}

func TestConcurrentRecord(t *testing.T) {
	b := New(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.Record(Event{Rank: int32(g), At: vclock.Time(i), Kind: KindUser})
			}
		}(g)
	}
	wg.Wait()
	if b.Len() != 800 {
		t.Fatalf("len = %d", b.Len())
	}
}

func TestSnapshotCacheInvalidation(t *testing.T) {
	b := New(0)
	b.Record(Event{Rank: 0, At: 1, Kind: KindSend})
	if n := len(b.Events()); n != 1 {
		t.Fatalf("len = %d", n)
	}
	b.Record(Event{Rank: 0, At: 2, Kind: KindSend})
	if n := len(b.Events()); n != 2 {
		t.Fatalf("cache not invalidated: len = %d", n)
	}
}

func TestBoundSplitAcrossShards(t *testing.T) {
	// The total bound stays exact even when events spread over shards.
	const max = maxShards * minShardCap
	b := New(max)
	if len(b.shards) != maxShards {
		t.Fatalf("expected full shard fan-out, got %d", len(b.shards))
	}
	for r := 0; r < 32; r++ {
		for i := 0; i < 4*minShardCap; i++ {
			b.Record(Event{Rank: int32(r), At: vclock.Time(i), Kind: KindUser})
		}
	}
	if b.Len() > max {
		t.Fatalf("bound exceeded: len = %d", b.Len())
	}
	if total := b.Len() + b.Dropped(); total != 32*4*minShardCap {
		t.Fatalf("len+dropped = %d", total)
	}
}
