// Package trace records simulator events for timeline analysis — the
// performance-tool half of the toolkit (xSim is "designed like a
// traditional performance tool"). The simulated MPI layer emits one typed
// event per operation (sends, receive posts, completions, failures,
// detections, aborts); the buffer renders merged, time-ordered exports
// (CSV, Chrome trace-event JSON, per-rank summary tables) for external
// tooling.
//
// The recorder is sharded: ranks hash to independent ring buffers, each
// with its own lock, so partitions of the parallel engine record
// concurrently without serialising on a global mutex. Events carry fixed
// typed fields (kind, peer, tag, size) instead of preformatted strings, so
// the record path performs no formatting and, once a bounded shard's ring
// is warm, no allocation; human-readable detail strings are derived only
// at export time.
package trace

import (
	"sort"
	"strconv"
	"sync"

	"xsim/internal/vclock"
)

// Kind classifies a recorded event.
type Kind uint8

// Event kinds. KindUser is the catch-all for application-defined events
// carrying a free-form Detail string; the rest are emitted by the
// simulated MPI layer.
const (
	// KindUser is an application-defined event; Detail carries its text.
	KindUser Kind = iota
	// KindSend is a message send (Peer = destination, Tag, Size; the
	// FlagRendezvous flag distinguishes the protocol).
	KindSend
	// KindRecvPost is a receive post (Peer = source or -1 for
	// ANY_SOURCE, Tag).
	KindRecvPost
	// KindComplete is a request completion (Peer; FlagSendOp marks send
	// completions, FlagError failed ones).
	KindComplete
	// KindFailure is a simulated MPI process failure (At = time of
	// failure).
	KindFailure
	// KindDetect is a failure detection: a pending operation completed
	// in error after the communication timeout (Peer = failed rank,
	// Aux = the peer's time of failure in nanoseconds).
	KindDetect
	// KindAbort is a simulated MPI abort (Aux = exit code).
	KindAbort
	numKinds
)

// String names the kind as used in exports.
func (k Kind) String() string {
	switch k {
	case KindUser:
		return "user"
	case KindSend:
		return "send"
	case KindRecvPost:
		return "recv-post"
	case KindComplete:
		return "complete"
	case KindFailure:
		return "failure"
	case KindDetect:
		return "detect"
	case KindAbort:
		return "abort"
	default:
		return "kind-" + strconv.Itoa(int(k))
	}
}

// Flags qualify an event without widening it.
type Flags uint8

const (
	// FlagRendezvous marks a rendezvous-protocol send (eager otherwise).
	FlagRendezvous Flags = 1 << iota
	// FlagError marks a completion in error.
	FlagError
	// FlagSendOp marks a send-side completion (receive otherwise).
	FlagSendOp
)

// Event is one recorded occurrence. All classification lives in small
// fixed fields so recording never formats strings; Detail is optional
// (user events, extra context) and exporters derive a detail string from
// the typed fields when it is empty.
type Event struct {
	// At is the virtual time.
	At vclock.Time
	// Seq is the shard-assigned arrival sequence number. Events of one
	// rank always land in the same shard, so per-rank order is exact.
	Seq uint64
	// Size is the payload size in bytes (sends/completions).
	Size int64
	// Aux carries kind-specific data: the failed peer's time of failure
	// in nanoseconds (KindDetect) or the exit code (KindAbort).
	Aux int64
	// Rank is the simulated process, or -1 for simulator-level events.
	Rank int32
	// Peer is the remote rank of the operation, or -1.
	Peer int32
	// Tag is the message tag (point-to-point events).
	Tag int32
	// Kind classifies the event.
	Kind Kind
	// Flags qualify it.
	Flags Flags
	// Detail is optional free-form text; exports quote it safely.
	Detail string
}

// shard is one independently locked ring buffer. Ranks map statically to
// shards, so under the parallel engine the partitions' record streams
// touch disjoint shards and never contend.
type shard struct {
	mu      sync.Mutex
	events  []Event // ring once len == max (max > 0)
	start   int     // index of the oldest event when the ring has wrapped
	max     int     // capacity bound; 0 = unbounded
	seq     uint64
	dropped uint64
	counts  [numKinds]uint64
	// Pad shards apart so neighbouring locks don't false-share.
	_ [24]byte
}

// Buffer is a bounded, thread-safe event recorder. The zero value is not
// usable; construct with New.
type Buffer struct {
	shards []shard
	mask   uint32

	// Export-side cache: the merged time-ordered snapshot is built once
	// per buffer version (sum of shard sequence numbers), so repeated
	// queries (OfKind, OfRank, exporters) sort only when new events
	// arrived since the last merge.
	cacheMu  sync.Mutex
	cache    []Event
	cacheVer uint64
	cached   bool

	// Counter tracks (RecordCounter): sampled gauges exported as Chrome
	// trace counter events. Low volume, so one lock suffices.
	ctrMu    sync.Mutex
	counters []CounterSample
}

// CounterSample is one sample of a named counter track — a gauge value at
// a point in virtual time. Chrome-trace exports render each named counter
// as its own graphed track (phase "C").
type CounterSample struct {
	At    vclock.Time
	Name  string
	Value float64
}

// maxShards bounds the shard fan-out; 16 covers every worker count the
// engine runs at while keeping merge cost trivial. minShardCap keeps
// bounded shards from getting so small that a skewed rank distribution
// starves the retained window — small bounded buffers collapse to fewer
// shards (contention only matters at trace volumes where max is large).
const (
	maxShards   = 16
	minShardCap = 64
)

// New returns a buffer holding at most max events in total; the most
// recent events are retained (each shard is a ring) and overwritten ones
// are counted as dropped. max <= 0 means unbounded.
func New(max int) *Buffer {
	n := maxShards
	if max > 0 && max < n*minShardCap {
		// Keep every shard's ring at least minShardCap deep (and the
		// total bound exact): fewer shards, never more than max slots.
		n = 1
		for n*2 <= max/minShardCap {
			n *= 2
		}
	}
	b := &Buffer{shards: make([]shard, n), mask: uint32(n - 1)}
	if max > 0 {
		per := max / n
		extra := max % n
		for i := range b.shards {
			b.shards[i].max = per
			if i < extra {
				b.shards[i].max++
			}
		}
	}
	return b
}

// shardFor maps a rank to its shard; rank -1 (simulator-level events) gets
// a stable shard of its own alias.
func (b *Buffer) shardFor(rank int32) *shard {
	return &b.shards[uint32(rank+1)&b.mask]
}

// Record stores one event. It takes only the owning shard's lock: events
// of different ranks recorded by different engine partitions do not
// serialise against each other. Once a bounded shard's ring is full,
// recording allocates nothing (Detail-free events overwrite in place).
func (b *Buffer) Record(ev Event) {
	s := b.shardFor(ev.Rank)
	s.mu.Lock()
	s.seq++
	ev.Seq = s.seq
	if ev.Kind < numKinds {
		s.counts[ev.Kind]++
	}
	if s.max > 0 && len(s.events) == s.max {
		s.events[s.start] = ev
		s.start++
		if s.start == s.max {
			s.start = 0
		}
		s.dropped++
	} else {
		s.events = append(s.events, ev)
	}
	s.mu.Unlock()
}

// RecordCounter appends one sample to the named counter track. Counters
// are kept apart from the event shards: they are sampled gauges (VP
// lifecycle, pool occupancy), not per-operation events, and are never
// dropped by the ring bound.
func (b *Buffer) RecordCounter(name string, at vclock.Time, value float64) {
	b.ctrMu.Lock()
	b.counters = append(b.counters, CounterSample{At: at, Name: name, Value: value})
	b.ctrMu.Unlock()
}

// Counters returns a copy of the recorded counter samples in record order.
func (b *Buffer) Counters() []CounterSample {
	b.ctrMu.Lock()
	defer b.ctrMu.Unlock()
	return append([]CounterSample(nil), b.counters...)
}

// Len returns the number of retained events.
func (b *Buffer) Len() int {
	n := 0
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		n += len(s.events)
		s.mu.Unlock()
	}
	return n
}

// Dropped returns the number of events overwritten due to the bound.
func (b *Buffer) Dropped() int {
	n := uint64(0)
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		n += s.dropped
		s.mu.Unlock()
	}
	return int(n)
}

// version sums the shard sequence numbers — it changes iff any event was
// recorded since the last observation.
func (b *Buffer) version() uint64 {
	var v uint64
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		v += s.seq
		s.mu.Unlock()
	}
	return v
}

// snapshot returns the merged events ordered by (virtual time, rank,
// arrival sequence), building the sorted merge at most once per buffer
// version. Callers must treat the returned slice as read-only.
func (b *Buffer) snapshot() []Event {
	b.cacheMu.Lock()
	defer b.cacheMu.Unlock()
	if b.cached && b.version() == b.cacheVer {
		return b.cache
	}
	var ver uint64
	var out []Event
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		ver += s.seq
		out = append(out, s.events[s.start:]...)
		out = append(out, s.events[:s.start]...)
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Seq < out[j].Seq
	})
	b.cache, b.cacheVer, b.cached = out, ver, true
	return out
}

// Events returns a copy of the retained events ordered by (virtual time,
// rank, arrival sequence).
func (b *Buffer) Events() []Event {
	return append([]Event(nil), b.snapshot()...)
}

// OfKind returns the retained events of one kind, time-ordered. The
// underlying snapshot is sorted once per buffer version and filtered per
// query, so repeated queries cost O(n), not O(n log n).
func (b *Buffer) OfKind(kind Kind) []Event {
	var out []Event
	for _, ev := range b.snapshot() {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

// OfRank returns the retained events of one rank, time-ordered.
func (b *Buffer) OfRank(rank int) []Event {
	var out []Event
	for _, ev := range b.snapshot() {
		if ev.Rank == int32(rank) {
			out = append(out, ev)
		}
	}
	return out
}

// Counts histograms all recorded events (including ones later overwritten
// by the ring bound) by kind name.
func (b *Buffer) Counts() map[string]int {
	out := make(map[string]int)
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		for k, c := range s.counts {
			if c > 0 {
				out[Kind(k).String()] += int(c)
			}
		}
		s.mu.Unlock()
	}
	return out
}
