// Package trace records simulator events into an in-memory buffer for
// timeline analysis — the performance-tool half of the toolkit (xSim is
// "designed like a traditional performance tool"). The simulated MPI layer
// emits an event per operation (sends, receive posts, completions,
// failures, aborts); the buffer orders them by virtual time and renders
// CSV for external tooling.
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"xsim/internal/vclock"
)

// Event is one recorded occurrence.
type Event struct {
	// Seq is the buffer-assigned sequence number (arrival order).
	Seq uint64
	// Rank is the simulated process, or -1 for simulator-level events.
	Rank int
	// At is the virtual time.
	At vclock.Time
	// Kind classifies the event ("send", "recv-post", "complete",
	// "failure", "abort", ...).
	Kind string
	// Detail carries kind-specific information.
	Detail string
}

// Buffer is a bounded, thread-safe event recorder. The zero value is not
// usable; construct with New.
type Buffer struct {
	mu      sync.Mutex
	events  []Event
	seq     uint64
	max     int
	dropped int
}

// New returns a buffer holding at most max events (older events are
// retained; later ones are counted as dropped). max <= 0 means unbounded.
func New(max int) *Buffer {
	return &Buffer{max: max}
}

// Record implements the MPI layer's Tracer hook.
func (b *Buffer) Record(rank int, at vclock.Time, kind, detail string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.seq++
	if b.max > 0 && len(b.events) >= b.max {
		b.dropped++
		return
	}
	b.events = append(b.events, Event{Seq: b.seq, Rank: rank, At: at, Kind: kind, Detail: detail})
}

// Len returns the number of retained events.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// Dropped returns the number of events discarded due to the bound.
func (b *Buffer) Dropped() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Events returns the retained events ordered by (virtual time, rank,
// arrival sequence).
func (b *Buffer) Events() []Event {
	b.mu.Lock()
	out := append([]Event(nil), b.events...)
	b.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// OfKind returns the retained events of one kind, time-ordered.
func (b *Buffer) OfKind(kind string) []Event {
	var out []Event
	for _, ev := range b.Events() {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

// OfRank returns the retained events of one rank, time-ordered.
func (b *Buffer) OfRank(rank int) []Event {
	var out []Event
	for _, ev := range b.Events() {
		if ev.Rank == rank {
			out = append(out, ev)
		}
	}
	return out
}

// Counts histograms the retained events by kind.
func (b *Buffer) Counts() map[string]int {
	out := make(map[string]int)
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, ev := range b.events {
		out[ev.Kind]++
	}
	return out
}

// WriteCSV renders the time-ordered events as CSV with a header row.
func (b *Buffer) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "time_s,rank,kind,detail"); err != nil {
		return err
	}
	for _, ev := range b.Events() {
		if _, err := fmt.Fprintf(w, "%.9f,%d,%s,%q\n", ev.At.Seconds(), ev.Rank, ev.Kind, ev.Detail); err != nil {
			return err
		}
	}
	return nil
}
