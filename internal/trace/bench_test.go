package trace

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"xsim/internal/vclock"
)

// legacyBuffer replicates the pre-sharding tracer — one global mutex, one
// string-formatted record per event, full re-copy + re-sort per query — so
// the benchmarks document what the rewrite bought.
type legacyBuffer struct {
	mu     sync.Mutex
	events []legacyEvent
	max    int
}

type legacyEvent struct {
	Rank   int
	At     vclock.Time
	Kind   string
	Detail string
}

func newLegacy(max int) *legacyBuffer { return &legacyBuffer{max: max} }

func (b *legacyBuffer) Record(rank int, at vclock.Time, kind, detail string) {
	b.mu.Lock()
	if b.max > 0 && len(b.events) >= b.max {
		copy(b.events, b.events[1:])
		b.events = b.events[:len(b.events)-1]
	}
	b.events = append(b.events, legacyEvent{Rank: rank, At: at, Kind: kind, Detail: detail})
	b.mu.Unlock()
}

func (b *legacyBuffer) Events() []legacyEvent {
	b.mu.Lock()
	out := append([]legacyEvent(nil), b.events...)
	b.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

func (b *legacyBuffer) OfKind(kind string) []legacyEvent {
	var out []legacyEvent
	for _, ev := range b.Events() {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

// BenchmarkRecord measures one goroutine recording typed events into a
// bounded buffer (the steady-state ring overwrite path).
func BenchmarkRecord(b *testing.B) {
	buf := New(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Record(Event{Rank: 0, At: vclock.Time(i), Kind: KindSend, Peer: 1, Tag: 7, Size: 64})
	}
}

// BenchmarkRecordLegacy is the old path: global mutex plus the
// fmt.Sprintf the call sites used to pay per event.
func BenchmarkRecordLegacy(b *testing.B) {
	buf := newLegacy(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Record(0, vclock.Time(i), "send", fmt.Sprintf("dst=%d tag=%d size=%d eager", 1, 7, 64))
	}
}

// BenchmarkRecordParallel4 drives 4 goroutines with distinct ranks — the
// shape of the Workers=4 engine — against the sharded buffer. Distinct
// ranks map to distinct shards, so throughput should scale near-linearly.
func BenchmarkRecordParallel4(b *testing.B) {
	benchParallelRecord(b, func(rank int32, i int64, buf *Buffer) {
		buf.Record(Event{Rank: rank, At: vclock.Time(i), Kind: KindSend, Peer: 1, Tag: 7, Size: 64})
	})
}

func benchParallelRecord(b *testing.B, rec func(rank int32, i int64, buf *Buffer)) {
	buf := New(1 << 16)
	var next atomic.Int32
	b.ReportAllocs()
	b.SetParallelism(1) // exactly GOMAXPROCS goroutines
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rank := next.Add(1) - 1
		var i int64
		for pb.Next() {
			rec(rank, i, buf)
			i++
		}
	})
}

// BenchmarkRecordLegacyParallel4 is the same workload against the global
// mutex: every record serialises, so adding goroutines buys nothing.
func BenchmarkRecordLegacyParallel4(b *testing.B) {
	buf := newLegacy(1 << 16)
	var next atomic.Int32
	b.ReportAllocs()
	b.SetParallelism(1)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rank := int(next.Add(1) - 1)
		var i int64
		for pb.Next() {
			buf.Record(rank, vclock.Time(i), "send", fmt.Sprintf("dst=%d tag=%d size=%d eager", 1, 7, 64))
			i++
		}
	})
}

// BenchmarkOfKind measures repeated filtered queries against a populated
// buffer. The snapshot is sorted once per buffer version, so each query is
// a linear filter.
func BenchmarkOfKind(b *testing.B) {
	buf := New(0)
	for i := 0; i < 1<<14; i++ {
		k := KindSend
		if i%3 == 0 {
			k = KindRecvPost
		}
		buf.Record(Event{Rank: int32(i % 16), At: vclock.Time(i), Kind: k})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(buf.OfKind(KindSend)) == 0 {
			b.Fatal("no events")
		}
	}
}

// BenchmarkOfKindLegacy re-copies and re-sorts the whole buffer per query,
// as OfKind did before the fix.
func BenchmarkOfKindLegacy(b *testing.B) {
	buf := newLegacy(0)
	for i := 0; i < 1<<14; i++ {
		k := "send"
		if i%3 == 0 {
			k = "recv-post"
		}
		buf.Record(i%16, vclock.Time(i), k, "")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(buf.OfKind("send")) == 0 {
			b.Fatal("no events")
		}
	}
}
