package xsim

import (
	"errors"

	"xsim/internal/checkpoint"
	"xsim/internal/redundancy"
)

// ReplicatedStencilConfig parameterises the replicated heat-proxy stencil:
// a ring halo exchange whose every logical rank is backed by Degree
// replicas through the redundancy layer's Mirror protocol, so injected
// process failures are absorbed as long as one replica of each logical
// rank survives. The total problem size is fixed: at degree r the world
// splits into Ranks/r logical ranks that each carry r× the per-rank work,
// which is what makes the replication arms comparable to the unreplicated
// checkpoint arm in the crossover experiment.
type ReplicatedStencilConfig struct {
	// Degree is the replication degree r (1 = unreplicated baseline).
	Degree int
	// Iterations is the iteration count of the full solve.
	Iterations int
	// ComputePerIteration is the per-iteration compute time of one
	// logical rank at degree 1; at degree r every replica computes r×
	// this (fixed total problem over fewer logical ranks).
	ComputePerIteration Duration
	// HaloBytes is the per-direction halo payload (and the synthetic
	// per-rank checkpoint size).
	HaloBytes int
	// CheckpointInterval checkpoints every k iterations (0 disables).
	CheckpointInterval int
	// CheckpointCost is the simulated cost of writing one checkpoint
	// (Daly's δ), charged explicitly so the zero-cost file-system model
	// still produces the checkpoint/restart trade-off.
	CheckpointCost Duration
	// RestartCost is charged once at the start of every restarted run
	// (Daly's R).
	RestartCost Duration
	// Prefix names the checkpoint files.
	Prefix string
}

// defaults fills the zero fields.
func (c *ReplicatedStencilConfig) defaults() {
	if c.Degree == 0 {
		c.Degree = 2
	}
	if c.Iterations == 0 {
		c.Iterations = 40
	}
	if c.ComputePerIteration == 0 {
		c.ComputePerIteration = Seconds(2.5)
	}
	if c.HaloBytes == 0 {
		c.HaloBytes = 1024
	}
	if c.Prefix == "" {
		c.Prefix = "repl"
	}
}

// Halo tags of the replicated stencil (application tag space).
const (
	tagHaloRight = 0
	tagHaloLeft  = 1
)

// RunReplicatedStencil returns the replicated stencil application: every
// iteration computes, exchanges ring halos through an r-way Mirror
// communicator, and optionally checkpoints. A process failure is absorbed
// by the surviving replicas of the failed logical rank; only when every
// replica of some logical rank has died does the application abort (and a
// Campaign with the matching SuccessFor/DrawFailures hooks restarts it
// from the latest replica-covered checkpoint, with continuous virtual
// time).
func RunReplicatedStencil(cfg ReplicatedStencilConfig) App {
	cfg.defaults()
	return func(env *Env) {
		defer env.Finalize()
		rc, err := redundancy.WrapN(env, cfg.Degree)
		if err != nil {
			env.Logf("replicated stencil: %v", err)
			env.Abort(2)
			return
		}
		rc.Protocol = redundancy.Mirror
		n := rc.Size()
		me := rc.Logical()

		// Restart bookkeeping happens before any virtual time passes, so
		// every rank resumes from the same iteration: the scan sees the
		// store exactly as the previous run left it.
		store := env.FSStore()
		ckpts := cfg.CheckpointInterval > 0 && store != nil
		startIter := 0
		if ckpts {
			startIter = latestReplicatedCheckpoint(store, cfg.Prefix, n, cfg.Degree)
		}
		if store != nil {
			if _, restarted := checkpoint.LoadExitTime(store); restarted && cfg.RestartCost > 0 {
				env.Elapse(cfg.RestartCost)
			}
		}
		var fs *CheckpointFS
		if ckpts {
			fs, err = NewCheckpointFS(env)
			if err != nil {
				env.Logf("replicated stencil: %v", err)
				env.Abort(2)
				return
			}
		}

		abort := func(err error) {
			env.Logf("replicated stencil: rank %d (logical %d replica %d): %v",
				env.Rank(), me, rc.Replica(), err)
			env.Abort(1)
		}
		// drain consumes one halo: silent-data-corruption reports carry
		// the message and do not stop the solve; everything else (a
		// logical rank with no live replicas, above all) aborts the run.
		drain := func(src, tag int) bool {
			msg, err := rc.Recv(src, tag)
			var sdc *redundancy.SDCError
			if err != nil && !errors.As(err, &sdc) {
				abort(err)
				return false
			}
			msg.Release()
			return true
		}

		halo := make([]byte, cfg.HaloBytes)
		right := (me + 1) % n
		left := (me - 1 + n) % n
		for iter := startIter; iter < cfg.Iterations; iter++ {
			env.Elapse(Duration(cfg.Degree) * cfg.ComputePerIteration)
			if n > 1 {
				if err := rc.Send(right, tagHaloRight, halo); err != nil {
					abort(err)
					return
				}
				if err := rc.Send(left, tagHaloLeft, halo); err != nil {
					abort(err)
					return
				}
				if !drain(left, tagHaloRight) || !drain(right, tagHaloLeft) {
					return
				}
			}
			if done := iter + 1; ckpts && done%cfg.CheckpointInterval == 0 && done < cfg.Iterations {
				if cfg.CheckpointCost > 0 {
					env.Elapse(cfg.CheckpointCost)
				}
				meta := CheckpointMeta{Iteration: done, Rank: env.Rank(), PayloadSize: cfg.HaloBytes}
				if err := fs.WriteSized(cfg.Prefix, meta, cfg.HaloBytes); err != nil {
					abort(err)
					return
				}
			}
		}
	}
}

// latestReplicatedCheckpoint returns the highest checkpointed iteration at
// which every logical rank is covered by at least one replica's complete
// checkpoint file — the furthest point a replicated restart can resume
// from. Files of replicas that died mid-write are incomplete and do not
// cover their logical rank, but any surviving replica's file does.
func latestReplicatedCheckpoint(store *Store, prefix string, n, degree int) int {
	best := 0
	for _, it := range checkpoint.Iterations(store, prefix) {
		if it <= best {
			continue
		}
		if replicaCovered(store, prefix, it, n, degree) {
			best = it
		}
	}
	return best
}

// replicaCovered reports whether iteration's checkpoint set covers every
// one of the n logical ranks with at least one replica's complete file.
func replicaCovered(store *Store, prefix string, iteration, n, degree int) bool {
	for l := 0; l < n; l++ {
		ok := false
		for k := 0; k < degree && !ok; k++ {
			name := checkpoint.FileName(prefix, iteration, l+k*n)
			ok = store.Exists(name) && store.Complete(name)
		}
		if !ok {
			return false
		}
	}
	return true
}

// ReplicatedSetComplete builds the Campaign.SetCompleteFor criterion for a
// replicated run over ranks world ranks at the given replication degree: a
// checkpoint set is kept as long as every logical rank is covered by some
// surviving replica's complete file. The default every-world-rank
// criterion would delete exactly the sets a replicated restart resumes
// from (a set in which one replica died mid-campaign is incomplete by
// world-rank count but perfectly restorable).
func ReplicatedSetComplete(ranks, degree int) func(store *Store, prefix string, iteration int) bool {
	n := ranks / degree
	return func(store *Store, prefix string, iteration int) bool {
		return replicaCovered(store, prefix, iteration, n, degree)
	}
}

// replicatedSuccess builds the Campaign.SuccessFor test for a replicated
// run: the run is done when no rank aborted and every logical rank has at
// least one replica that ran to completion — failed-but-covered replicas
// do not force a restart.
func replicatedSuccess(ranks, degree int) func(*Result) bool {
	n := ranks / degree
	return func(res *Result) bool {
		if res.Aborted > 0 {
			return false
		}
		for l := 0; l < n; l++ {
			ok := false
			for k := 0; k < degree && !ok; k++ {
				ok = res.Deaths[l+k*n] == "completed"
			}
			if !ok {
				return false
			}
		}
		return true
	}
}
