// Benchmarks regenerating the paper's evaluation (one per table/figure)
// plus the ablation studies called out in DESIGN.md. Simulated-time
// results are attached as custom metrics (simsec = simulated seconds), so
// `go test -bench=. -benchmem` prints the same quantities the paper's
// tables report alongside the harness's own wall-clock cost.
//
// The paper's Table II runs at 32,768 simulated MPI ranks; the benchmarks
// default to 512 ranks so the suite stays fast, and honour
// XSIM_BENCH_RANKS for full-scale runs:
//
//	XSIM_BENCH_RANKS=32768 go test -bench=TableII -benchtime=1x
package xsim

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"testing"

	"xsim/internal/topology"
)

// benchRanks returns the rank count for the table benchmarks.
func benchRanks() int {
	if s := os.Getenv("XSIM_BENCH_RANKS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 512
}

// BenchmarkTableI regenerates Table I: the fault (bit flip) injection
// campaign (100 victims, 100-injection cap). Metrics: the mean/median/max
// injections-to-failure the paper reports (21.97 / 17 / 98).
func BenchmarkTableI(b *testing.B) {
	var mean, median, max float64
	for i := 0; i < b.N; i++ {
		res, err := RunTableI(TableIConfig{RunSpec: RunSpec{Seed: 2013}})
		if err != nil {
			b.Fatal(err)
		}
		mean, median, max = res.Summary.Mean, res.Summary.Median, res.Summary.Max
	}
	b.ReportMetric(mean, "mean-inj")
	b.ReportMetric(median, "median-inj")
	b.ReportMetric(max, "max-inj")
}

// BenchmarkTableII regenerates Table II: the heat application with the
// checkpoint interval (500/250/125 of 1,000 iterations) and the system
// MTTF (6,000 s / 3,000 s) varied. The table itself is printed once; the
// headline E2 cells are attached as metrics.
func BenchmarkTableII(b *testing.B) {
	ranks := benchRanks()
	var tab *TableII
	for i := 0; i < b.N; i++ {
		var err error
		tab, err = RunTableII(TableIIConfig{RunSpec: RunSpec{Ranks: ranks, Seed: 133}})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("Table II at %d ranks:\n%s", ranks, tab.Render())
	for _, r := range tab.Rows {
		if r.MTTFs > 0 {
			b.ReportMetric(r.E2.Seconds(), fmt.Sprintf("E2(mttf=%.0fs,C=%d)", r.MTTFs.Seconds(), r.C))
		}
	}
}

// BenchmarkFirstImpressions regenerates the §V-D failure-mode study:
// failures strike during computation, are detected in the halo exchange or
// the barrier, and leave incomplete/corrupted checkpoints behind.
func BenchmarkFirstImpressions(b *testing.B) {
	var fi *FirstImpressions
	for i := 0; i < b.N; i++ {
		var err error
		fi, err = RunFirstImpressions(FirstImpressionsConfig{
			RunSpec: RunSpec{Ranks: 64, Seed: 1},
			Trials:  8, Iterations: 200, Interval: 25,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("\n%s", fi.Render())
	b.ReportMetric(float64(fi.FailedIn["compute"]), "failed-in-compute")
	b.ReportMetric(float64(fi.DetectedIn["halo-exchange"]), "detected-in-halo")
	b.ReportMetric(float64(fi.DetectedIn["barrier"]), "detected-in-barrier")
}

// BenchmarkCampaign measures the campaign-orchestration layer: a 16-seed
// failure/restart campaign set over a small heat workload, sequential
// (pool=1) vs four campaigns in flight (pool=4). pool=1 is the
// orchestration-overhead floor; on a multi-core host the pooled run
// approaches pool× throughput (on a single-processor host the two are
// equal — the pool buys nothing without processors to spread over). The
// simulated virtual seconds per run are attached as a metric.
func BenchmarkCampaign(b *testing.B) {
	hc, err := HeatWorkloadFor(8)
	if err != nil {
		b.Fatal(err)
	}
	hc.Iterations = 50
	hc.ExchangeInterval = 10
	hc.CheckpointInterval = 10
	tpl := Campaign{
		Base:             Config{Ranks: 8},
		MTTF:             100 * Second,
		CheckpointPrefix: "heat",
		AppFor:           func(int) App { return RunHeat(hc) },
	}
	for _, pool := range []int{1, 4} {
		b.Run(fmt.Sprintf("pool=%d", pool), func(b *testing.B) {
			var simSecs float64
			for i := 0; i < b.N; i++ {
				set, err := RunCampaigns(context.Background(), CampaignSetConfig{
					RunSpec:  RunSpec{Seed: 42, Pool: pool},
					Template: tpl,
					Count:    16,
				})
				if err != nil {
					b.Fatal(err)
				}
				if set.Stats.Runner.Completed != 16 {
					b.Fatalf("completed = %d", set.Stats.Runner.Completed)
				}
				simSecs = set.Stats.SimTime.Seconds()
			}
			b.ReportMetric(simSecs, "simsec")
		})
	}
}

// BenchmarkAblationDetectionTimeout sweeps the configurable network
// communication timeout (§IV-C): the survivor's detection latency tracks
// the timeout directly.
func BenchmarkAblationDetectionTimeout(b *testing.B) {
	for _, timeout := range []Duration{100 * Millisecond, Second, 5 * Second, 30 * Second, 60 * Second} {
		b.Run(fmt.Sprintf("timeout=%v", timeout), func(b *testing.B) {
			var detectAfter float64
			for i := 0; i < b.N; i++ {
				net := DefaultNet(4)
				net.System.DetectionTimeout = timeout
				net.OnNode.DetectionTimeout = timeout
				sim, err := New(Config{
					Ranks:    4,
					Net:      net,
					Failures: Schedule{{Rank: 2, At: Time(10 * Second)}},
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := sim.Run(func(e *Env) {
					defer e.Finalize()
					w := e.World()
					w.SetErrorHandler(ErrorsReturn)
					switch e.Rank() {
					case 2:
						e.Sleep(Hour) // interruptible: fails at exactly 10 s
					case 0:
						if _, err := w.Recv(2, 0); err == nil {
							b.Error("recv from failed rank should error")
						}
						detectAfter = (e.Now() - Time(10*Second)).Seconds()
					}
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Failed != 1 {
					b.Fatalf("failure did not activate: %+v", res)
				}
			}
			b.ReportMetric(detectAfter, "detect-simsec")
		})
	}
}

// BenchmarkAblationEagerThreshold sweeps the eager/rendezvous threshold
// (§V-C sets 256 kB): with a late-posted receive, eager delivery is
// unaffected while rendezvous pays the handshake after the post.
func BenchmarkAblationEagerThreshold(b *testing.B) {
	const msgSize = 256 * 1024
	for _, threshold := range []int{0, 4 * 1024, 256 * 1024, 1 << 20} {
		b.Run(fmt.Sprintf("threshold=%dkB", threshold/1024), func(b *testing.B) {
			var recvDone, sendDone float64
			for i := 0; i < b.N; i++ {
				net := DefaultNet(2)
				net.EagerThreshold = threshold
				sim, err := New(Config{Ranks: 2, Net: net})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sim.Run(func(e *Env) {
					defer e.Finalize()
					w := e.World()
					if e.Rank() == 0 {
						if err := w.SendN(1, 0, msgSize); err != nil {
							b.Error(err)
						}
						// Eager senders complete after local injection;
						// rendezvous senders stall until the late
						// receive posts — the protocol's key trade-off.
						sendDone = e.Now().Seconds()
					} else {
						e.Elapse(Millisecond) // the receive posts late
						if _, err := w.Recv(0, 0); err != nil {
							b.Error(err)
						}
						recvDone = e.Now().Seconds()
					}
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(sendDone*1e6, "send-simµs")
			b.ReportMetric(recvDone*1e6, "recv-simµs")
		})
	}
}

// BenchmarkAblationCollectives compares the paper's linear collective
// algorithms against binomial trees: the linear barrier cost grows with
// the rank count, the tree's with its logarithm.
func BenchmarkAblationCollectives(b *testing.B) {
	for _, algo := range []struct {
		name string
		conf func(*Config)
	}{
		{"linear", func(*Config) {}},
		{"tree", func(c *Config) { c.Collectives = 1 }},
	} {
		for _, n := range []int{64, 512} {
			b.Run(fmt.Sprintf("%s/ranks=%d", algo.name, n), func(b *testing.B) {
				var barrierTime float64
				for i := 0; i < b.N; i++ {
					cfg := Config{Ranks: n, CallOverhead: PaperCallOverhead}
					algo.conf(&cfg)
					sim, err := New(cfg)
					if err != nil {
						b.Fatal(err)
					}
					res, err := sim.Run(func(e *Env) {
						defer e.Finalize()
						if err := e.World().Barrier(); err != nil {
							b.Error(err)
						}
					})
					if err != nil {
						b.Fatal(err)
					}
					barrierTime = res.SimTime.Seconds()
				}
				b.ReportMetric(barrierTime, "barrier-simsec")
			})
		}
	}
}

// BenchmarkAblationCheckpointIO re-runs a Table II cell with the
// file-system cost model enabled — the overhead the paper explicitly
// excluded because its file-system model was a work in progress.
func BenchmarkAblationCheckpointIO(b *testing.B) {
	for _, mode := range []struct {
		name string
		conf func(*TableIIConfig)
	}{
		// The paper's configuration: checkpoint I/O costs nothing.
		{"free-io", func(*TableIIConfig) {}},
		// A realistic PFS barely moves E1 — the per-rank checkpoints are
		// tiny, which is exactly why the paper excluded the overhead.
		{"paper-pfs", func(c *TableIIConfig) { c.FSModel = PaperPFS() }},
		// A pathological PFS (1 s metadata ops, 1 MB/s) makes the cost
		// model's contribution visible.
		{"slow-pfs", func(c *TableIIConfig) {
			c.FSModel.MetadataLatency = Second
			c.FSModel.WriteBandwidth = 1e6
			c.FSModel.ReadBandwidth = 1e6
		}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var e1 float64
			for i := 0; i < b.N; i++ {
				cfg := TableIIConfig{
					RunSpec:   RunSpec{Ranks: 64, Seed: 133},
					Intervals: []int{125},
					MTTFs:     []Duration{6000 * Second},
				}
				mode.conf(&cfg)
				tab, err := RunTableII(cfg)
				if err != nil {
					b.Fatal(err)
				}
				e1 = tab.Rows[1].E1.Seconds()
			}
			b.ReportMetric(e1, "E1-simsec")
		})
	}
}

// BenchmarkAblationContention compares the contention-free base network
// model (the paper's) against endpoint NIC contention on the worst case
// for a linear collective: a gather-style incast at rank 0.
func BenchmarkAblationContention(b *testing.B) {
	const n = 65
	const size = 128 * 1024
	for _, mode := range []struct {
		name string
		conf func(cfg *Config)
	}{
		{"contention-free", func(*Config) {}},
		{"nic-1GBps", func(cfg *Config) {
			cfg.Net = DefaultNet(n)
			cfg.Net.InjectBandwidth = 1e9
			cfg.Net.EjectBandwidth = 1e9
		}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var done float64
			for i := 0; i < b.N; i++ {
				cfg := Config{Ranks: n}
				mode.conf(&cfg)
				sim, err := New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := sim.Run(func(e *Env) {
					defer e.Finalize()
					w := e.World()
					if e.Rank() == 0 {
						for r := 1; r < n; r++ {
							if _, err := w.Recv(AnySource, 0); err != nil {
								b.Error(err)
							}
						}
					} else {
						if err := w.SendN(0, 0, size); err != nil {
							b.Error(err)
						}
					}
				})
				if err != nil {
					b.Fatal(err)
				}
				done = res.PerRank[0].Seconds() * 1e6
			}
			b.ReportMetric(done, "incast-simµs")
		})
	}
}

// BenchmarkIntervalSweep regenerates the checkpoint-interval sweep (the
// figure-style extension of Table II): measured E2 across intervals vs
// Daly's analytic expected runtime, locating the optimum.
func BenchmarkIntervalSweep(b *testing.B) {
	var s *IntervalSweep
	for i := 0; i < b.N; i++ {
		var err error
		s, err = RunIntervalSweep(IntervalSweepConfig{RunSpec: RunSpec{Ranks: 64}, Seeds: []int64{133, 134}})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("\n%s", s.Render())
	b.ReportMetric(float64(s.BestMeasured), "best-C")
	b.ReportMetric(s.DalyOptimal, "daly-C")
}

// BenchmarkPowerVsInterval extends Table II into the power dimension (the
// paper's stated end goal): energy to solution across checkpoint
// intervals under failures.
func BenchmarkPowerVsInterval(b *testing.B) {
	for _, c := range []int{500, 125} {
		b.Run(fmt.Sprintf("C=%d", c), func(b *testing.B) {
			var joules, e2 float64
			for i := 0; i < b.N; i++ {
				hc, err := HeatWorkloadFor(64)
				if err != nil {
					b.Fatal(err)
				}
				hc.ExchangeInterval = c
				hc.CheckpointInterval = c
				store := NewStore()
				camp := Campaign{
					Base:             Config{Ranks: 64, Store: store, CallOverhead: PaperCallOverhead},
					MTTF:             3000 * Second,
					Seed:             133,
					CheckpointPrefix: "heat",
					AppFor:           func(int) App { return RunHeat(hc) },
				}
				res, err := camp.Run()
				if err != nil {
					b.Fatal(err)
				}
				e2 = res.E2.Seconds()
				joules = res.Energy(PaperPower()).TotalJoules
			}
			b.ReportMetric(e2, "E2-simsec")
			b.ReportMetric(joules/1e6, "MJ")
		})
	}
}

// BenchmarkAblationIncremental compares full checkpoints against
// incremental (delta) checkpoints on a PFS where checkpoint I/O actually
// costs something — the incremental/differential checkpointing technique
// of the paper's related work. Each mode writes one full checkpoint and
// seven 10 % deltas (or eight fulls), 64 MB of state per rank.
func BenchmarkAblationIncremental(b *testing.B) {
	const stateBytes = 64 << 20
	for _, mode := range []struct {
		name        string
		incremental bool
	}{{"full-every-time", false}, {"10pct-deltas", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var ckptTime float64
			for i := 0; i < b.N; i++ {
				sim, err := New(Config{Ranks: 1, FSModel: PaperPFS()})
				if err != nil {
					b.Fatal(err)
				}
				res, err := sim.Run(func(e *Env) {
					defer e.Finalize()
					fs, err := NewCheckpointFS(e)
					if err != nil {
						b.Error(err)
						return
					}
					if err := fs.WriteSized("app", CheckpointMeta{Iteration: 1, Rank: 0}, stateBytes); err != nil {
						b.Error(err)
						return
					}
					for it := 2; it <= 8; it++ {
						if mode.incremental {
							err = fs.WriteIncrementalSized("app", CheckpointMeta{Iteration: it, Rank: 0}, it-1, stateBytes/10)
						} else {
							err = fs.WriteSized("app", CheckpointMeta{Iteration: it, Rank: 0}, stateBytes)
						}
						if err != nil {
							b.Error(err)
							return
						}
					}
				})
				if err != nil {
					b.Fatal(err)
				}
				ckptTime = res.SimTime.Seconds()
			}
			b.ReportMetric(ckptTime, "ckpt-simsec")
		})
	}
}

// BenchmarkAblationProactive compares reactive checkpoint/restart against
// prediction-driven proactive checkpointing (the paper's related-work
// family: proactive migration/rejuvenation): a predictor firing 30 s
// before the failure lets the application checkpoint just in time,
// shrinking the lost work from up to a full interval to almost nothing.
func BenchmarkAblationProactive(b *testing.B) {
	for _, mode := range []struct {
		name string
		lead Duration
	}{{"reactive", 0}, {"predicted-30s", 30 * Second}} {
		b.Run(mode.name, func(b *testing.B) {
			var e2 float64
			for i := 0; i < b.N; i++ {
				hc, err := HeatWorkloadFor(64)
				if err != nil {
					b.Fatal(err)
				}
				hc.Iterations = 200
				hc.ExchangeInterval = 100
				hc.CheckpointInterval = 100
				lead := mode.lead
				camp := Campaign{
					Base:             Config{Ranks: 64, Failures: Schedule{{Rank: 9, At: Time(900 * Second)}}},
					CheckpointPrefix: "heat",
					PredictionLead:   lead,
					AppForPredicted: func(run int, predicted Time) App {
						h := hc
						if lead > 0 {
							h.ProactiveTrigger = predicted
						}
						return RunHeat(h)
					},
				}
				res, err := camp.Run()
				if err != nil {
					b.Fatal(err)
				}
				e2 = res.E2.Seconds()
			}
			b.ReportMetric(e2, "E2-simsec")
		})
	}
}

// BenchmarkEngineParallel measures the conservative parallel engine: the
// same heat workload — with real stencil computation, so there is native
// work to overlap — executed with 1..8 partitions. Results are identical
// across worker counts (tested); wall time is what changes. On a
// single-core host this measures the window-synchronisation overhead; on
// multicore hosts it shows the speedup.
func BenchmarkEngineParallel(b *testing.B) {
	hc, err := HeatWorkloadFor(512)
	if err != nil {
		b.Fatal(err)
	}
	hc.Iterations = 50
	hc.ExchangeInterval = 10
	hc.CheckpointInterval = 25
	hc.RealCompute = true
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sim, err := New(Config{Ranks: 512, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sim.Run(RunHeat(hc)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineEvents measures the raw discrete-event core: simulated
// point-to-point messages per wall second through the full MPI stack.
func BenchmarkEngineEvents(b *testing.B) {
	const msgsPerRun = 2000
	for i := 0; i < b.N; i++ {
		sim, err := New(Config{Ranks: 2})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(func(e *Env) {
			defer e.Finalize()
			w := e.World()
			peer := 1 - e.Rank()
			for m := 0; m < msgsPerRun; m++ {
				if e.Rank() == 0 {
					if err := w.SendN(peer, 0, 8); err != nil {
						b.Error(err)
					}
					if _, err := w.Recv(peer, 1); err != nil {
						b.Error(err)
					}
				} else {
					if _, err := w.Recv(peer, 0); err != nil {
						b.Error(err)
					}
					if err := w.SendN(peer, 1, 8); err != nil {
						b.Error(err)
					}
				}
			}
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(2*msgsPerRun*b.N)/b.Elapsed().Seconds(), "msgs/s")
}

// BenchmarkTopologyHops measures the network model's routing arithmetic
// (it sits on every message's critical path).
func BenchmarkTopologyHops(b *testing.B) {
	tor := topology.PaperTorus()
	n := tor.Nodes()
	sum := 0
	for i := 0; i < b.N; i++ {
		sum += tor.Hops(i%n, (i*2654435761)%n)
	}
	if sum < 0 {
		b.Fatal("unreachable")
	}
}
