module xsim

go 1.22
