// wire.go defines the versioned wire form of the Run-family campaign
// configurations: CampaignSpec is the JSON document the CLI drivers, the
// campaign service (cmd/xsim-server), and stored experiment definitions
// all exchange. One spec describes one campaign of a known kind (Table I,
// Table II, the interval sweep, the §V-D failure-mode study, the
// replication crossover, or the checkpoint-I/O ablation), and its
// canonical encoding — normalized defaults, sorted keys, execution knobs
// excluded — doubles as the content address under which the service
// caches results: identical (spec, seed) cells are deterministic, so they
// are computed exactly once no matter how many tenants ask.
package xsim

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"xsim/internal/runner"
)

// SpecVersion is the wire-format version this package encodes and the
// only version it accepts. Bump it when a field changes meaning; old
// documents then fail Validate with a typed error instead of being
// silently reinterpreted (and cache keys can never collide across
// versions, because the version is part of the canonical encoding).
const SpecVersion = 1

// CampaignKind names a campaign family on the wire.
type CampaignKind string

// The campaign kinds: one per Run-family experiment driver.
const (
	// KindTableI is the paper's Table I bit-flip injection campaign
	// (RunTableI).
	KindTableI CampaignKind = "table1"
	// KindTableII is the paper's Table II checkpoint-interval × MTTF
	// sweep (RunTableII).
	KindTableII CampaignKind = "table2"
	// KindIntervalSweep is the checkpoint-interval sweep against Daly's
	// model (RunIntervalSweep).
	KindIntervalSweep CampaignKind = "interval-sweep"
	// KindFirstImpressions is the §V-D failure-mode classification
	// (RunFirstImpressions).
	KindFirstImpressions CampaignKind = "first-impressions"
	// KindCrossover is the replication-vs-checkpoint crossover study
	// (RunReplicationCrossover).
	KindCrossover CampaignKind = "replication-crossover"
	// KindIOAblation is the Table II rerun with checkpoint-I/O cost on
	// (RunCheckpointIOAblation).
	KindIOAblation CampaignKind = "io-ablation"
)

// campaignKinds lists every known kind.
var campaignKinds = []CampaignKind{
	KindTableI, KindTableII, KindIntervalSweep,
	KindFirstImpressions, KindCrossover, KindIOAblation,
}

// SpecError is a typed validation error naming the offending wire field;
// the campaign service maps it to a 400 response, and the CLI drivers to
// a usage failure. Several violations arrive joined with errors.Join;
// retrieve any one with errors.As.
type SpecError struct {
	// Field is the JSON path of the offending field ("" for
	// document-level problems such as malformed JSON).
	Field string
	// Msg describes the violation.
	Msg string
}

// Error implements error.
func (e *SpecError) Error() string {
	if e.Field == "" {
		return "spec: " + e.Msg
	}
	return fmt.Sprintf("spec: field %q: %s", e.Field, e.Msg)
}

// IsSpecError reports whether err carries a *SpecError (directly, wrapped,
// or joined) — the test the service's 400 mapping uses.
func IsSpecError(err error) bool {
	var se *SpecError
	return errors.As(err, &se)
}

// CampaignSpec is the versioned wire form of one campaign. The scalar
// trunk mirrors RunSpec (ranks, seed, per-call overhead, and the
// execution knobs workers/pool); exactly one kind-specific parameter
// block matches Kind. All durations travel as explicit units in the field
// name (_ns for virtual nanoseconds, _seconds for human-scale floats), so
// a document is meaningful without this package's type definitions.
//
// Workers and Pool are execution knobs: campaign results are bit-identical
// at any engine parallelism and pool size (the determinism the
// differential harness pins), so Canonical zeroes them and two specs
// differing only in knobs share one cache entry.
type CampaignSpec struct {
	// Version must be SpecVersion.
	Version int `json:"version"`
	// Kind selects the campaign family and its parameter block.
	Kind CampaignKind `json:"kind"`
	// Ranks is the simulated MPI world size (kind-specific default;
	// unused by table1, which simulates victim process images).
	Ranks int `json:"ranks"`
	// Seed drives every random draw of the campaign; derived per-cell
	// seeds make results identical at any pool size.
	Seed int64 `json:"seed"`
	// CallOverheadNS is the per-MPI-call CPU cost in virtual
	// nanoseconds (0 = the paper's calibrated overhead).
	CallOverheadNS int64 `json:"call_overhead_ns"`
	// Workers is each run's engine parallelism (execution knob).
	Workers int `json:"workers"`
	// Pool caps concurrently simulated runs (execution knob).
	Pool int `json:"pool"`

	// Exactly the block matching Kind may be set; Normalize creates and
	// fills it with explicit defaults.
	TableI     *TableIParams           `json:"table1,omitempty"`
	TableII    *TableIIParams          `json:"table2,omitempty"`
	Sweep      *IntervalSweepParams    `json:"interval_sweep,omitempty"`
	Phases     *FirstImpressionsParams `json:"first_impressions,omitempty"`
	Crossover  *CrossoverParams        `json:"replication_crossover,omitempty"`
	IOAblation *IOAblationParams       `json:"io_ablation,omitempty"`
}

// TableIParams parameterises a table1 campaign (TableIConfig's wire
// form).
type TableIParams struct {
	Victims       int `json:"victims"`
	MaxInjections int `json:"max_injections"`
}

// TableIIParams parameterises a table2 campaign (TableIIConfig's wire
// form). PaperIO enables the paper's flat parallel-file-system cost model
// for checkpoints (Table II proper charges nothing).
type TableIIParams struct {
	Iterations  int       `json:"iterations"`
	Intervals   []int     `json:"intervals"`
	MTTFSeconds []float64 `json:"mttf_seconds"`
	MaxRuns     int       `json:"max_runs"`
	PaperIO     bool      `json:"paper_io"`
}

// IntervalSweepParams parameterises an interval-sweep campaign
// (IntervalSweepConfig's wire form).
type IntervalSweepParams struct {
	Iterations  int     `json:"iterations"`
	Intervals   []int   `json:"intervals"`
	MTTFSeconds float64 `json:"mttf_seconds"`
	Seeds       []int64 `json:"seeds"`
}

// FirstImpressionsParams parameterises a first-impressions campaign
// (FirstImpressionsConfig's wire form).
type FirstImpressionsParams struct {
	Iterations  int     `json:"iterations"`
	Interval    int     `json:"interval"`
	Trials      int     `json:"trials"`
	MTTFSeconds float64 `json:"mttf_seconds"`
}

// CrossoverParams parameterises a replication-crossover campaign
// (ReplicationCrossoverConfig's wire form).
type CrossoverParams struct {
	Degrees           []int     `json:"degrees"`
	MTTFSeconds       []float64 `json:"mttf_seconds"`
	Iterations        int       `json:"iterations"`
	ComputeSeconds    float64   `json:"compute_seconds"`
	HaloBytes         int       `json:"halo_bytes"`
	CheckpointSeconds float64   `json:"checkpoint_seconds"`
	RestartSeconds    float64   `json:"restart_seconds"`
	MaxRuns           int       `json:"max_runs"`
}

// IOAblationParams parameterises an io-ablation campaign
// (CheckpointIOAblationConfig's wire form; the storage arms themselves
// are fixed to the paper's models).
type IOAblationParams struct {
	Iterations    int       `json:"iterations"`
	Intervals     []int     `json:"intervals"`
	MTTFSeconds   []float64 `json:"mttf_seconds"`
	PayloadBytes  int       `json:"payload_bytes"`
	DeltaFraction float64   `json:"delta_fraction"`
	FullEvery     int       `json:"full_every"`
	MaxRuns       int       `json:"max_runs"`
}

// --- decoding -------------------------------------------------------------

// DecodeCampaignSpec parses one JSON campaign spec. Unknown fields,
// malformed JSON, type mismatches, and trailing data are all rejected
// with a typed *SpecError; the decoded spec is returned exactly as
// written (call Normalize for defaults and Validate for semantic
// checks).
func DecodeCampaignSpec(data []byte) (*CampaignSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s CampaignSpec
	if err := dec.Decode(&s); err != nil {
		return nil, specDecodeError(err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, &SpecError{Msg: "trailing data after the spec document"}
	}
	return &s, nil
}

// ReadCampaignSpec is DecodeCampaignSpec over a reader.
func ReadCampaignSpec(r io.Reader) (*CampaignSpec, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, &SpecError{Msg: fmt.Sprintf("reading spec: %v", err)}
	}
	return DecodeCampaignSpec(data)
}

// specDecodeError converts an encoding/json error into a *SpecError
// naming the field when the error carries one.
func specDecodeError(err error) error {
	var typeErr *json.UnmarshalTypeError
	if errors.As(err, &typeErr) {
		return &SpecError{Field: typeErr.Field,
			Msg: fmt.Sprintf("cannot decode %s into %s", typeErr.Value, typeErr.Type)}
	}
	// DisallowUnknownFields reports `json: unknown field "name"`.
	msg := err.Error()
	if rest, ok := strings.CutPrefix(msg, `json: unknown field "`); ok {
		return &SpecError{Field: strings.TrimSuffix(rest, `"`), Msg: "unknown field"}
	}
	return &SpecError{Msg: msg}
}

// --- normalization --------------------------------------------------------

// clone deep-copies the spec (slices and parameter blocks included)
// through its own wire encoding.
func (s *CampaignSpec) clone() *CampaignSpec {
	data, err := json.Marshal(s)
	if err != nil {
		// A CampaignSpec of plain scalars and slices cannot fail to
		// marshal except for NaN/Inf floats, which Validate rejects.
		panic(fmt.Sprintf("xsim: clone: %v", err))
	}
	var c CampaignSpec
	if err := json.Unmarshal(data, &c); err != nil {
		panic(fmt.Sprintf("xsim: clone: %v", err))
	}
	return &c
}

// runSpec builds the RunSpec trunk the spec describes, attaching the
// caller's logger and progress hook.
func (s *CampaignSpec) runSpec(opt RunOptions) RunSpec {
	return RunSpec{
		Ranks:        s.Ranks,
		Workers:      s.Workers,
		Seed:         s.Seed,
		CallOverhead: Duration(s.CallOverheadNS),
		Pool:         s.Pool,
		Logf:         opt.Logf,
		OnProgress:   opt.OnProgress,
	}
}

// fromRunSpec copies the defaults-filled trunk back into wire form.
func (s *CampaignSpec) fromRunSpec(rs RunSpec) {
	s.Ranks = rs.Ranks
	s.CallOverheadNS = int64(rs.CallOverhead)
}

// secondsToDuration converts wire float seconds to virtual time.
func secondsToDuration(s float64) Duration { return Seconds(s) }

// durationToSeconds converts virtual time to wire float seconds.
func durationToSeconds(d Duration) float64 { return d.Seconds() }

// secondsSlice converts a Duration slice to wire float seconds.
func secondsSlice(ds []Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = durationToSeconds(d)
	}
	return out
}

// durationSlice converts wire float seconds to a Duration slice.
func durationSlice(ss []float64) []Duration {
	out := make([]Duration, len(ss))
	for i, s := range ss {
		out[i] = secondsToDuration(s)
	}
	return out
}

// Normalize fills the spec's zero fields with the same defaults the
// experiment drivers apply — it builds the driver config, runs its
// defaults path, and copies the result back — so a spec submitted over
// the wire and a config built from CLI flags describe runs identically,
// and the canonical encoding always carries explicit defaults. A spec of
// unknown kind or version is left untouched for Validate to reject.
func (s *CampaignSpec) Normalize() {
	if s.Version == 0 {
		s.Version = SpecVersion
	}
	switch s.Kind {
	case KindTableI:
		if s.TableI == nil {
			s.TableI = &TableIParams{}
		}
		cfg := s.tableIConfig(RunOptions{})
		cfg.defaults()
		*s.TableI = TableIParams{Victims: cfg.Victims, MaxInjections: cfg.MaxInjections}
	case KindTableII:
		if s.TableII == nil {
			s.TableII = &TableIIParams{}
		}
		cfg := s.tableIIConfig(RunOptions{})
		cfg.defaults()
		s.fromRunSpec(cfg.RunSpec)
		s.TableII.Iterations = cfg.Iterations
		s.TableII.Intervals = cfg.Intervals
		s.TableII.MTTFSeconds = secondsSlice(cfg.MTTFs)
		s.TableII.MaxRuns = cfg.MaxRuns
	case KindIntervalSweep:
		if s.Sweep == nil {
			s.Sweep = &IntervalSweepParams{}
		}
		cfg := s.sweepConfig(RunOptions{})
		cfg.defaults()
		s.fromRunSpec(cfg.RunSpec)
		s.Sweep.Iterations = cfg.Iterations
		s.Sweep.Intervals = cfg.Intervals
		s.Sweep.MTTFSeconds = durationToSeconds(cfg.MTTF)
		s.Sweep.Seeds = cfg.Seeds
	case KindFirstImpressions:
		if s.Phases == nil {
			s.Phases = &FirstImpressionsParams{}
		}
		cfg := s.phasesConfig(RunOptions{})
		cfg.defaults()
		s.fromRunSpec(cfg.RunSpec)
		s.Phases.Iterations = cfg.Iterations
		s.Phases.Interval = cfg.Interval
		s.Phases.Trials = cfg.Trials
		s.Phases.MTTFSeconds = durationToSeconds(cfg.MTTF)
	case KindCrossover:
		if s.Crossover == nil {
			s.Crossover = &CrossoverParams{}
		}
		cfg := s.crossoverConfig(RunOptions{})
		cfg.defaults()
		s.fromRunSpec(cfg.RunSpec)
		p := s.Crossover
		p.Degrees = cfg.Degrees
		p.MTTFSeconds = secondsSlice(cfg.MTTFs)
		p.Iterations = cfg.Iterations
		p.ComputeSeconds = durationToSeconds(cfg.ComputePerIteration)
		p.HaloBytes = cfg.HaloBytes
		p.CheckpointSeconds = durationToSeconds(cfg.CheckpointCost)
		p.RestartSeconds = durationToSeconds(cfg.RestartCost)
		p.MaxRuns = cfg.MaxRuns
	case KindIOAblation:
		if s.IOAblation == nil {
			s.IOAblation = &IOAblationParams{}
		}
		cfg := s.ioAblationConfig(RunOptions{})
		cfg.defaults()
		s.fromRunSpec(cfg.RunSpec)
		p := s.IOAblation
		p.Iterations = cfg.Iterations
		p.Intervals = cfg.Intervals
		p.MTTFSeconds = secondsSlice(cfg.MTTFs)
		p.PayloadBytes = cfg.CheckpointPayload
		p.DeltaFraction = cfg.DeltaFraction
		p.FullEvery = cfg.FullEvery
		p.MaxRuns = cfg.MaxRuns
	}
}

// --- config construction --------------------------------------------------

func (s *CampaignSpec) tableIConfig(opt RunOptions) TableIConfig {
	p := s.TableI
	if p == nil {
		p = &TableIParams{}
	}
	return TableIConfig{
		RunSpec:       s.runSpec(opt),
		Victims:       p.Victims,
		MaxInjections: p.MaxInjections,
	}
}

func (s *CampaignSpec) tableIIConfig(opt RunOptions) TableIIConfig {
	p := s.TableII
	if p == nil {
		p = &TableIIParams{}
	}
	cfg := TableIIConfig{
		RunSpec:    s.runSpec(opt),
		Iterations: p.Iterations,
		Intervals:  p.Intervals,
		MTTFs:      durationSlice(p.MTTFSeconds),
		MaxRuns:    p.MaxRuns,
	}
	if p.PaperIO {
		cfg.FSModel = PaperPFS()
	}
	return cfg
}

func (s *CampaignSpec) sweepConfig(opt RunOptions) IntervalSweepConfig {
	p := s.Sweep
	if p == nil {
		p = &IntervalSweepParams{}
	}
	return IntervalSweepConfig{
		RunSpec:    s.runSpec(opt),
		Iterations: p.Iterations,
		Intervals:  p.Intervals,
		MTTF:       secondsToDuration(p.MTTFSeconds),
		Seeds:      p.Seeds,
	}
}

func (s *CampaignSpec) phasesConfig(opt RunOptions) FirstImpressionsConfig {
	p := s.Phases
	if p == nil {
		p = &FirstImpressionsParams{}
	}
	return FirstImpressionsConfig{
		RunSpec:    s.runSpec(opt),
		Iterations: p.Iterations,
		Interval:   p.Interval,
		Trials:     p.Trials,
		MTTF:       secondsToDuration(p.MTTFSeconds),
	}
}

func (s *CampaignSpec) crossoverConfig(opt RunOptions) ReplicationCrossoverConfig {
	p := s.Crossover
	if p == nil {
		p = &CrossoverParams{}
	}
	return ReplicationCrossoverConfig{
		RunSpec:             s.runSpec(opt),
		Degrees:             p.Degrees,
		MTTFs:               durationSlice(p.MTTFSeconds),
		Iterations:          p.Iterations,
		ComputePerIteration: secondsToDuration(p.ComputeSeconds),
		HaloBytes:           p.HaloBytes,
		CheckpointCost:      secondsToDuration(p.CheckpointSeconds),
		RestartCost:         secondsToDuration(p.RestartSeconds),
		MaxRuns:             p.MaxRuns,
	}
}

func (s *CampaignSpec) ioAblationConfig(opt RunOptions) CheckpointIOAblationConfig {
	p := s.IOAblation
	if p == nil {
		p = &IOAblationParams{}
	}
	return CheckpointIOAblationConfig{
		RunSpec:           s.runSpec(opt),
		Iterations:        p.Iterations,
		Intervals:         p.Intervals,
		MTTFs:             durationSlice(p.MTTFSeconds),
		CheckpointPayload: p.PayloadBytes,
		DeltaFraction:     p.DeltaFraction,
		FullEvery:         p.FullEvery,
		MaxRuns:           p.MaxRuns,
	}
}

// --- validation -----------------------------------------------------------

// Validate checks the spec's wire-level semantics: version, a known kind,
// the one-of rule for parameter blocks, and field ranges. Violations are
// *SpecError values joined with errors.Join, each naming its JSON field,
// so the campaign service can return them all in one 400 response.
// Validation does not require Normalize: zero fields mean "use the
// default" and are always valid.
func (s *CampaignSpec) Validate() error {
	var errs []error
	bad := func(field, format string, args ...any) {
		errs = append(errs, &SpecError{Field: field, Msg: fmt.Sprintf(format, args...)})
	}
	if s.Version != SpecVersion {
		bad("version", "unsupported spec version %d (this build speaks %d)", s.Version, SpecVersion)
	}
	known := false
	for _, k := range campaignKinds {
		if s.Kind == k {
			known = true
		}
	}
	if !known {
		bad("kind", "unknown campaign kind %q (known: %v)", s.Kind, campaignKinds)
	}
	if s.Ranks < 0 {
		bad("ranks", "must be non-negative, got %d", s.Ranks)
	}
	if s.Workers < 0 {
		bad("workers", "must be non-negative, got %d", s.Workers)
	}
	if s.Pool < 0 {
		bad("pool", "must be non-negative, got %d", s.Pool)
	}
	if s.CallOverheadNS < 0 {
		bad("call_overhead_ns", "must be non-negative, got %d", s.CallOverheadNS)
	}

	// One-of: only the block matching Kind may be present.
	blocks := []struct {
		field string
		kind  CampaignKind
		set   bool
	}{
		{"table1", KindTableI, s.TableI != nil},
		{"table2", KindTableII, s.TableII != nil},
		{"interval_sweep", KindIntervalSweep, s.Sweep != nil},
		{"first_impressions", KindFirstImpressions, s.Phases != nil},
		{"replication_crossover", KindCrossover, s.Crossover != nil},
		{"io_ablation", KindIOAblation, s.IOAblation != nil},
	}
	for _, b := range blocks {
		if b.set && b.kind != s.Kind {
			bad(b.field, "parameter block does not match kind %q", s.Kind)
		}
	}

	checkIntervals := func(field string, intervals []int) {
		for i, c := range intervals {
			if c <= 0 {
				bad(fmt.Sprintf("%s[%d]", field, i), "checkpoint interval must be positive, got %d", c)
			}
		}
	}
	checkSeconds := func(field string, v float64) {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			bad(field, "must be a non-negative finite number of seconds, got %v", v)
		}
	}
	checkSecondsSlice := func(field string, vs []float64) {
		for i, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
				bad(fmt.Sprintf("%s[%d]", field, i), "must be a positive finite number of seconds, got %v", v)
			}
		}
	}
	switch {
	case s.Kind == KindTableI && s.TableI != nil:
		if s.TableI.Victims < 0 {
			bad("table1.victims", "must be non-negative, got %d", s.TableI.Victims)
		}
		if s.TableI.MaxInjections < 0 {
			bad("table1.max_injections", "must be non-negative, got %d", s.TableI.MaxInjections)
		}
	case s.Kind == KindTableII && s.TableII != nil:
		p := s.TableII
		if p.Iterations < 0 {
			bad("table2.iterations", "must be non-negative, got %d", p.Iterations)
		}
		checkIntervals("table2.intervals", p.Intervals)
		checkSecondsSlice("table2.mttf_seconds", p.MTTFSeconds)
		if p.MaxRuns < 0 {
			bad("table2.max_runs", "must be non-negative, got %d", p.MaxRuns)
		}
	case s.Kind == KindIntervalSweep && s.Sweep != nil:
		p := s.Sweep
		if p.Iterations < 0 {
			bad("interval_sweep.iterations", "must be non-negative, got %d", p.Iterations)
		}
		checkIntervals("interval_sweep.intervals", p.Intervals)
		checkSeconds("interval_sweep.mttf_seconds", p.MTTFSeconds)
	case s.Kind == KindFirstImpressions && s.Phases != nil:
		p := s.Phases
		if p.Iterations < 0 {
			bad("first_impressions.iterations", "must be non-negative, got %d", p.Iterations)
		}
		if p.Interval < 0 {
			bad("first_impressions.interval", "must be non-negative, got %d", p.Interval)
		}
		if p.Trials < 0 {
			bad("first_impressions.trials", "must be non-negative, got %d", p.Trials)
		}
		checkSeconds("first_impressions.mttf_seconds", p.MTTFSeconds)
	case s.Kind == KindCrossover && s.Crossover != nil:
		p := s.Crossover
		ranks := s.Ranks
		if ranks == 0 {
			ranks = 24 // the crossover's default world size
		}
		for i, r := range p.Degrees {
			if r < 2 {
				bad(fmt.Sprintf("replication_crossover.degrees[%d]", i), "replication degree must be at least 2, got %d", r)
			} else if ranks%r != 0 {
				bad(fmt.Sprintf("replication_crossover.degrees[%d]", i), "ranks %d must be divisible by degree %d", ranks, r)
			}
		}
		checkSecondsSlice("replication_crossover.mttf_seconds", p.MTTFSeconds)
		if p.Iterations < 0 {
			bad("replication_crossover.iterations", "must be non-negative, got %d", p.Iterations)
		}
		checkSeconds("replication_crossover.compute_seconds", p.ComputeSeconds)
		checkSeconds("replication_crossover.checkpoint_seconds", p.CheckpointSeconds)
		checkSeconds("replication_crossover.restart_seconds", p.RestartSeconds)
		if p.HaloBytes < 0 {
			bad("replication_crossover.halo_bytes", "must be non-negative, got %d", p.HaloBytes)
		}
		if p.MaxRuns < 0 {
			bad("replication_crossover.max_runs", "must be non-negative, got %d", p.MaxRuns)
		}
	case s.Kind == KindIOAblation && s.IOAblation != nil:
		p := s.IOAblation
		if p.Iterations < 0 {
			bad("io_ablation.iterations", "must be non-negative, got %d", p.Iterations)
		}
		checkIntervals("io_ablation.intervals", p.Intervals)
		checkSecondsSlice("io_ablation.mttf_seconds", p.MTTFSeconds)
		if p.PayloadBytes < 0 {
			bad("io_ablation.payload_bytes", "must be non-negative, got %d", p.PayloadBytes)
		}
		if p.DeltaFraction < 0 || p.DeltaFraction > 1 || math.IsNaN(p.DeltaFraction) {
			bad("io_ablation.delta_fraction", "must be in [0, 1], got %v", p.DeltaFraction)
		}
		if p.FullEvery < 0 {
			bad("io_ablation.full_every", "must be non-negative, got %d", p.FullEvery)
		}
		if p.MaxRuns < 0 {
			bad("io_ablation.max_runs", "must be non-negative, got %d", p.MaxRuns)
		}
	}
	return errors.Join(errs...)
}

// --- canonical encoding ---------------------------------------------------

// Canonical returns the spec's canonical wire encoding: defaults made
// explicit (Normalize), execution knobs (workers, pool) zeroed because
// they cannot change results, and the JSON re-emitted with
// lexicographically sorted keys so the bytes do not depend on field
// declaration or input order. Two specs describing the same simulated
// campaign canonicalise to the same bytes — the property the
// content-addressed result cache is keyed on.
func (s *CampaignSpec) Canonical() ([]byte, error) {
	c := s.clone()
	c.Normalize()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	c.Workers, c.Pool = 0, 0
	return canonicalMarshal(c)
}

// CacheKey returns the content address of the spec's canonical encoding
// (SHA-256, hex) — the key under which the campaign service stores and
// reuses results.
func (s *CampaignSpec) CacheKey() (string, error) {
	data, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// canonicalMarshal encodes v and re-encodes the document canonically.
func canonicalMarshal(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, &SpecError{Msg: fmt.Sprintf("encoding: %v", err)}
	}
	return canonicalJSON(raw)
}

// canonicalJSON re-encodes a JSON document deterministically: objects
// with sorted keys (encoding/json sorts map keys), numbers kept verbatim
// via json.Number, and no insignificant whitespace.
func canonicalJSON(raw []byte) ([]byte, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, &SpecError{Msg: fmt.Sprintf("canonicalising: %v", err)}
	}
	out, err := json.Marshal(v)
	if err != nil {
		return nil, &SpecError{Msg: fmt.Sprintf("canonicalising: %v", err)}
	}
	return out, nil
}

// --- progress events ------------------------------------------------------

// ProgressEvent is the wire form of one campaign-pool progress report:
// the event RunSpec.OnProgress receives and the campaign service streams
// to clients as NDJSON. Wall-clock quantities are split the way fairness
// accounting needs them: WaitNS is how long the run sat queued behind the
// pool, ElapsedNS how long it executed.
type ProgressEvent struct {
	// Index, Label, Seed identify the run within its campaign.
	Index int    `json:"index"`
	Label string `json:"label,omitempty"`
	Seed  int64  `json:"seed,omitempty"`
	// State is "started", "retrying", "completed", or "failed".
	State string `json:"state"`
	// Attempt is the 1-based attempt number.
	Attempt int `json:"attempt"`
	// Error carries the attempt's error text for retrying/failed states.
	Error string `json:"error,omitempty"`
	// ElapsedNS is the attempt's execution wall time in nanoseconds;
	// WaitNS the run's queue wait before its first attempt.
	ElapsedNS int64 `json:"elapsed_ns"`
	WaitNS    int64 `json:"wait_ns"`
	// Done, Failed, Total summarise the campaign so far.
	Done   int `json:"done"`
	Failed int `json:"failed"`
	Total  int `json:"total"`
}

// progressEvent converts the runner's progress report to wire form.
func progressEvent(p runner.Progress) ProgressEvent {
	ev := ProgressEvent{
		Index:     p.Spec.Index,
		Label:     p.Spec.Label,
		Seed:      p.Spec.Seed,
		State:     p.State.String(),
		Attempt:   p.Attempt,
		ElapsedNS: p.Elapsed.Nanoseconds(),
		WaitNS:    p.Wait.Nanoseconds(),
		Done:      p.Done,
		Failed:    p.Failed,
		Total:     p.Total,
	}
	if p.Err != nil {
		ev.Error = p.Err.Error()
	}
	return ev
}
