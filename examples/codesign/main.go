// Codesign: compare two resilience strategies fairly — the toolkit's whole
// reason to exist. The paper's motivation: "there are currently no tools,
// methods, and metrics to compare them fairly, especially at extreme
// scale, and to identify the cost/benefit trade-off."
//
//	go run ./examples/codesign
//
// The same iterative workload faces the same process failure under two
// strategies:
//
//   - checkpoint/restart (the paper's Table II mechanism): the application
//     aborts on the failure, restarts from the last checkpoint with
//     continuous virtual time, and re-runs the lost iterations;
//
//   - ULFM run-through recovery (the paper's future work): the survivors
//     revoke, shrink, and finish the remaining work on fewer ranks without
//     restarting.
//
// Both report completion time and energy to solution from the same
// simulator, models, and failure — a co-design data point.
package main

import (
	"fmt"
	"log"

	"xsim"
)

const (
	ranks      = 64
	iterations = 200
	interval   = 25     // checkpoint interval (iterations)
	failSecs   = 320.0  // the failure both strategies face
	iterOps    = 8.92e6 // ≈5.25 simulated seconds per iteration
	failedRank = 13     // who dies
)

func main() {
	fmt.Printf("workload: %d ranks × %d iterations; rank %d fails at %v s\n\n",
		ranks, iterations, failedRank, failSecs)

	crTime, crEnergy := checkpointRestart()
	ulfmTime, ulfmEnergy := ulfmRunThrough()

	fmt.Println()
	fmt.Printf("%-22s %14s %16s\n", "strategy", "completion", "energy")
	fmt.Printf("%-22s %12.0f s %13.1f MJ\n", "checkpoint/restart", crTime, crEnergy/1e6)
	fmt.Printf("%-22s %12.0f s %13.1f MJ\n", "ULFM shrink-recovery", ulfmTime, ulfmEnergy/1e6)
	fmt.Println()
	switch {
	case ulfmTime < crTime:
		fmt.Printf("run-through recovery wins by %.0f s here: no lost iterations, but the\n", crTime-ulfmTime)
		fmt.Println("survivors carry the dead rank's share for the rest of the run —")
		fmt.Println("vary the failure time and checkpoint interval to find the crossover.")
	default:
		fmt.Printf("checkpoint/restart wins by %.0f s here: the failure struck close enough\n", ulfmTime-crTime)
		fmt.Println("to a checkpoint that little work was lost.")
	}
}

// checkpointRestart runs the heat workload through the restart campaign.
func checkpointRestart() (secs, joules float64) {
	hc, err := xsim.HeatWorkloadFor(ranks)
	if err != nil {
		log.Fatal(err)
	}
	hc.Iterations = iterations
	hc.ExchangeInterval = interval
	hc.CheckpointInterval = interval

	sched, err := xsim.ParseSchedule(fmt.Sprintf("%d@%g", failedRank, failSecs))
	if err != nil {
		log.Fatal(err)
	}
	camp := xsim.Campaign{
		Base:             xsim.Config{Ranks: ranks, Failures: sched, CallOverhead: xsim.PaperCallOverhead},
		CheckpointPrefix: "heat",
		AppFor:           func(int) xsim.App { return xsim.RunHeat(hc) },
	}
	res, err := camp.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint/restart:   %d run(s), F=%d, E2=%.0f s\n",
		len(res.Runs), res.Failures, res.E2.Seconds())
	return res.E2.Seconds(), res.Energy(xsim.PaperPower()).TotalJoules
}

// ulfmRunThrough runs an equivalent iteration loop under shrink recovery:
// survivors redistribute the remaining iterations after the failure.
func ulfmRunThrough() (secs, joules float64) {
	sched, err := xsim.ParseSchedule(fmt.Sprintf("%d@%g", failedRank, failSecs))
	if err != nil {
		log.Fatal(err)
	}
	sim, err := xsim.New(xsim.Config{Ranks: ranks, Failures: sched, CallOverhead: xsim.PaperCallOverhead})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(func(env *xsim.Env) {
		defer env.Finalize()
		world := env.World()
		world.SetErrorHandler(xsim.ErrorsReturn)
		if env.Rank() == failedRank {
			// The failed rank computes until its scheduled failure.
			for i := 0; i < iterations; i++ {
				env.Compute(iterOps)
				if _, err := world.Allreduce([]float64{1}, xsim.OpSum); err != nil {
					return
				}
			}
			return
		}
		done := 0
		_, err := xsim.RunWithRecovery(world, 3, func(c *xsim.Comm, attempt int) error {
			for done < iterations {
				env.Compute(iterOps * float64(ranks) / float64(c.Size()))
				if _, err := c.Allreduce([]float64{1}, xsim.OpSum); err != nil {
					return err
				}
				done++
			}
			return nil
		})
		if err != nil {
			env.Logf("recovery failed: %v", err)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ULFM shrink-recovery: %d survivors finished, completion %.0f s\n",
		res.Completed, res.SimTime.Seconds())
	return res.SimTime.Seconds(), res.Energy(xsim.PaperPower()).TotalJoules
}
