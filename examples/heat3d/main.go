// Heat3d: the paper's targeted application — an iterative 3-D heat
// equation solver with halo exchanges and application-level
// checkpoint/restart — driven through a failure/restart campaign.
//
//	go run ./examples/heat3d
//
// A process failure is injected mid-run; the simulated MPI layer detects
// it by communication timeout, the application aborts (the default
// MPI_ERRORS_ARE_FATAL behaviour), the simulated exit time is persisted,
// incomplete checkpoint sets are cleaned up, and the application restarts
// from the last valid checkpoint with continuous virtual time — exactly
// the cycle the paper's evaluation exercises.
package main

import (
	"fmt"
	"log"

	"xsim"
)

func main() {
	const ranks = 64

	// Scale the paper's workload down to 64 ranks, keeping the per-rank
	// 16³ cube; shorten it so the demo runs in moments.
	hc, err := xsim.HeatWorkloadFor(ranks)
	if err != nil {
		log.Fatal(err)
	}
	hc.Iterations = 200
	hc.ExchangeInterval = 25
	hc.CheckpointInterval = 25

	// Inject one failure: rank 13 fails (at the earliest) 300 simulated
	// seconds in — mid-computation, around iteration 57.
	sched, err := xsim.ParseSchedule("13@300")
	if err != nil {
		log.Fatal(err)
	}

	tracker := xsim.NewHeatTracker(ranks)
	hc.Tracker = tracker

	camp := xsim.Campaign{
		Base: xsim.Config{
			Ranks:        ranks,
			Failures:     sched,
			CallOverhead: xsim.PaperCallOverhead,
			Logf:         log.Printf,
		},
		CheckpointPrefix: "heat",
		AppFor: func(run int) xsim.App {
			return xsim.RunHeat(hc)
		},
	}
	res, err := camp.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	for _, run := range res.Runs {
		what := "completed"
		if run.Failed > 0 {
			what = "aborted after a process failure"
			if run.Injected != nil {
				what = fmt.Sprintf("aborted after rank %d failed", run.Injected.Rank)
			}
		}
		fmt.Printf("run %d: %v .. %v — %s\n", run.Run, run.Start, run.End, what)
	}
	fmt.Printf("\nE2 (with failure and restart) = %.0f s, F = %d, MTTF_a = %.0f s\n",
		res.E2.Seconds(), res.Failures, res.MTTFa().Seconds())
	fmt.Printf("ranks restarted from checkpoint iteration %d\n", tracker.StartIterOf(0))
}
