// Quickstart: run a 64-rank simulated MPI application and read its
// simulated execution time.
//
//	go run ./examples/quickstart
//
// Every rank computes, exchanges a token around the ring, and joins a
// final reduction — all inside the simulator, with virtual time charged by
// the processor and network models (by default the paper's: a node 1000×
// slower than a 1.7 GHz Opteron core, 1 µs links at 32 GB/s).
package main

import (
	"fmt"
	"log"

	"xsim"
)

func main() {
	const ranks = 64

	sim, err := xsim.New(xsim.Config{Ranks: ranks})
	if err != nil {
		log.Fatal(err)
	}

	res, err := sim.Run(func(env *xsim.Env) {
		defer env.Finalize()
		world := env.World()
		me, n := env.Rank(), env.Size()

		// A compute phase: 10^8 reference-core cycles, charged to the
		// rank's virtual clock by the processor model.
		env.Compute(1e8)

		// Pass a token around the ring.
		next, prev := (me+1)%n, (me-1+n)%n
		if me == 0 {
			if err := world.Send(next, 0, []byte("token")); err != nil {
				log.Fatalf("send: %v", err)
			}
			if _, err := world.Recv(prev, 0); err != nil {
				log.Fatalf("recv: %v", err)
			}
		} else {
			msg, err := world.Recv(prev, 0)
			if err != nil {
				log.Fatalf("recv: %v", err)
			}
			if err := world.Send(next, 0, msg.Data); err != nil {
				log.Fatalf("send: %v", err)
			}
		}

		// A global reduction: every rank contributes its rank number.
		sum, err := world.Allreduce([]float64{float64(me)}, xsim.OpSum)
		if err != nil {
			log.Fatalf("allreduce: %v", err)
		}
		if me == 0 {
			fmt.Printf("allreduce sum = %v (want %v)\n", sum[0], float64(n*(n-1)/2))
			fmt.Printf("rank 0 virtual clock after the ring: %v\n", env.Now())
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated execution time: %v (wall time %v)\n", res.SimTime, res.WallTime)
	fmt.Printf("per-process times: min %v avg %v max %v\n", res.MinTime, res.AvgTime, res.SimTime)
}
