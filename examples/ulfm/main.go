// ULFM: run-through failure recovery without restarting — the paper's
// future-work item, usable today in this toolkit.
//
//	go run ./examples/ulfm
//
// A master/worker computation loses a worker mid-run. Instead of the
// default abort-and-restart cycle, the survivors revoke the communicator
// (so everyone observes the failure), shrink it to the survivors, and
// redistribute the remaining work — comparing the two resilience
// strategies is exactly the kind of study the toolkit exists for.
package main

import (
	"fmt"
	"log"

	"xsim"
)

func main() {
	const (
		ranks = 16
		tasks = 160 // work items to finish, redistributed after failures
	)

	// Rank 5 fails 30 simulated seconds in.
	sched, err := xsim.ParseSchedule("5@30")
	if err != nil {
		log.Fatal(err)
	}
	sim, err := xsim.New(xsim.Config{Ranks: ranks, Failures: sched, Logf: log.Printf})
	if err != nil {
		log.Fatal(err)
	}

	done := make([]int, ranks) // tasks completed per world rank
	res, err := sim.Run(func(env *xsim.Env) {
		defer env.Finalize()
		world := env.World()
		world.SetErrorHandler(xsim.ErrorsReturn)

		remaining := tasks
		final, err := xsim.RunWithRecovery(world, 3, func(c *xsim.Comm, attempt int) error {
			// Static block distribution of the remaining work over the
			// current membership; every block ends with an allreduce so
			// a failure anywhere surfaces at every survivor.
			per := (remaining + c.Size() - 1) / c.Size()
			for batch := 0; batch < per; batch++ {
				env.Compute(1e7) // one task ≈ 5.9 s on the slowed node
				done[env.Rank()]++
				if _, err := c.Allreduce([]float64{1}, xsim.OpSum); err != nil {
					return err
				}
			}
			remaining = 0
			return nil
		})
		if err != nil {
			env.Logf("recovery gave up: %v", err)
			return
		}
		if final.Rank() == 0 {
			env.Logf("finished on a communicator of %d ranks", final.Size())
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	total := 0
	for _, d := range done {
		total += d
	}
	fmt.Printf("\n%d/%d ranks survived; %d task executions performed\n",
		res.Completed, ranks, total)
	fmt.Printf("simulated time %v — no restart, no lost checkpoint progress\n", res.SimTime)
}
