// Redundancy: redMPI-style r-way modular redundancy — detecting silent
// data corruption online by majority vote, and surviving process failures
// by failing over to surviving replicas, built on the toolkit's simulated
// MPI layer.
//
//	go run ./examples/redundancy
//
// Twenty-four physical ranks run an eight-rank logical computation three
// times over, using the mirror protocol (every copy reaches every receiver
// replica). Mid-run a bit flips in one replica's data AND one process of a
// different replica sphere is killed outright: the vote identifies the
// corrupted replica and hands every receiver the majority data, while the
// process failure is absorbed by the two surviving replicas of its logical
// rank — the logical computation completes despite both faults.
package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"math"

	"xsim"
)

func main() {
	const (
		logical = 8
		degree  = 3
		iters   = 4
	)

	sim, err := xsim.New(xsim.Config{
		Ranks: degree * logical,
		// Kill logical rank 5's replica 1 (world rank 13) mid-run.
		Failures: xsim.Schedule{{Rank: 5 + logical, At: xsim.Time(2 * xsim.Second)}},
	})
	if err != nil {
		log.Fatal(err)
	}

	detections := make([]string, degree*logical)
	res, err := sim.Run(func(env *xsim.Env) {
		defer env.Finalize()
		rep, err := xsim.WrapReplicated(env, degree)
		if err != nil {
			log.Fatal(err)
		}
		rep.Protocol = xsim.ReplicaMirror

		// Each logical rank passes a vector around the logical ring;
		// logical rank 3's replica 2 suffers a bit flip before sending.
		data := []float64{1, 2, 4, 8}
		if rep.Logical() == 3 && rep.Replica() == 2 {
			old, bad := xsim.FlipFloat64(data, 2, 61)
			env.Logf("soft error injected: %v -> %v", old, bad)
		}

		next := (rep.Logical() + 1) % rep.Size()
		prev := (rep.Logical() - 1 + rep.Size()) % rep.Size()
		for i := 0; i < iters; i++ {
			env.Elapse(xsim.Second)
			if err := rep.Send(next, 0, encode(data)); err != nil {
				log.Fatalf("send: %v", err)
			}
			msg, err := rep.Recv(prev, 0)
			var sdc *xsim.SDCError
			if errors.As(err, &sdc) {
				// The vote both names the corrupted replica and delivers
				// the majority data in msg — the computation continues on
				// clean values.
				detections[env.Rank()] = fmt.Sprintf(
					"logical %d replica %d: SDC in message from logical %d, corrupt replica(s) %v, corrected by majority",
					rep.Logical(), rep.Replica(), sdc.LogicalSrc, sdc.Corrupt)
			} else if err != nil {
				log.Fatalf("rank %d recv: %v", env.Rank(), err)
			}
			msg.Release()
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated time %v: %d completed, %d failed (absorbed by failover)\n\n",
		res.SimTime, res.Completed, res.Failed)
	found := 0
	for _, d := range detections {
		if d != "" {
			fmt.Println(d)
			found++
		}
	}
	switch {
	case found == 0:
		fmt.Println("no corruption detected (unexpected!)")
	case res.Failed != 1 || res.Aborted != 0:
		fmt.Println("process failure was not absorbed (unexpected!)")
	default:
		fmt.Printf("\n%d receiver replica(s) voted out the corruption, and logical rank 5\n", found)
		fmt.Println("survived the death of its replica 1 — r-way redundancy handled both faults")
	}
}

func encode(vals []float64) []byte {
	buf := make([]byte, 0, 8*len(vals))
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}
