// Redundancy: redMPI-style dual modular redundancy detecting silent data
// corruption online — the related-work system the paper highlights for
// soft-error studies, built on the toolkit's simulated MPI layer.
//
//	go run ./examples/redundancy
//
// Sixteen physical ranks run an eight-rank logical computation twice; a
// single bit flips in one replica's data mid-run. Without redundancy the
// corruption would silently poison every downstream value (as the
// faultinjection example shows); with the digest comparison, both replicas
// of the first receiver flag the corrupted message the moment it crosses
// the network.
package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"math"

	"xsim"
)

func main() {
	const logical = 8

	sim, err := xsim.New(xsim.Config{Ranks: 2 * logical})
	if err != nil {
		log.Fatal(err)
	}

	detections := make([]string, 2*logical)
	res, err := sim.Run(func(env *xsim.Env) {
		defer env.Finalize()
		dmr, err := xsim.WrapRedundant(env)
		if err != nil {
			log.Fatal(err)
		}

		// Each logical rank computes a vector and passes it around the
		// logical ring; logical rank 3's replica 1 suffers a bit flip.
		data := []float64{1, 2, 4, 8}
		if dmr.Logical() == 3 && dmr.Replica() == 1 {
			old, bad := xsim.FlipFloat64(data, 2, 61)
			env.Logf("soft error injected: %v -> %v", old, bad)
		}

		env.Compute(1e8)
		next := (dmr.Logical() + 1) % dmr.Size()
		prev := (dmr.Logical() - 1 + dmr.Size()) % dmr.Size()
		if err := dmr.Send(next, 0, encode(data)); err != nil {
			log.Fatalf("send: %v", err)
		}
		_, err = dmr.Recv(prev, 0)
		var sdc *xsim.SDCError
		if errors.As(err, &sdc) {
			detections[env.Rank()] = fmt.Sprintf(
				"logical %d replica %d detected SDC in message from logical %d",
				dmr.Logical(), dmr.Replica(), sdc.LogicalSrc)
		} else if err != nil {
			log.Fatalf("recv: %v", err)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated time %v, %d ranks completed\n\n", res.SimTime, res.Completed)
	found := 0
	for _, d := range detections {
		if d != "" {
			fmt.Println(d)
			found++
		}
	}
	if found == 0 {
		fmt.Println("no corruption detected (unexpected!)")
	} else {
		fmt.Printf("\n%d replica(s) flagged the corruption online — redMPI-style detection\n", found)
	}
}

func encode(vals []float64) []byte {
	buf := make([]byte, 0, 8*len(vals))
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}
