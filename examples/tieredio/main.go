// Tieredio: the checkpoint-I/O cost ablation — what the paper's zero-cost
// file-system assumption hides, and how much of it a multi-tier storage
// hierarchy buys back.
//
//	go run ./examples/tieredio
//
// The paper's Table II charges nothing for writing a checkpoint: the 16³
// points per rank are ~32 KB, invisible at any bandwidth. At production
// checkpoint sizes the picture changes. This example reruns the Table II
// sweep four ways over the same workload and the same failure sequences:
//
//   - free: the paper's zero-cost assumption (the reference);
//   - flat-pfs: every rank writes 256 MiB straight to a shared parallel
//     file system whose aggregate bandwidth the ranks must split;
//   - tiered: an SCR-style hierarchy — the rank commits to node-local
//     memory at memory speed and the copy drains asynchronously through a
//     burst buffer to the PFS, overlapping compute. A failure mid-drain
//     loses the volatile origin; the restart falls back to the deepest
//     tier whose copy completed (the buddy-copy failure mode);
//   - tiered-incr: the hierarchy plus incremental checkpoints — between
//     full checkpoints each cadence point writes only a quarter-size
//     delta, and every fourth checkpoint is full, bounding the restore
//     chain.
//
// The arms differ only in where checkpoint bytes go, so the "recovered
// fraction" at the bottom is a clean co-design number: how much of the
// flat-PFS overhead each storage architecture gives back.
package main

import (
	"fmt"
	"log"

	"xsim"
)

func main() {
	cfg := xsim.CheckpointIOAblationConfig{
		RunSpec:    xsim.RunSpec{Ranks: 256, Seed: 133},
		Iterations: 200,
		Intervals:  []int{50, 25},
		MTTFs:      []xsim.Duration{500 * xsim.Second},
	}
	fmt.Printf("checkpoint-I/O ablation: %d ranks, %d iterations, %d MiB per rank\n",
		cfg.Ranks, cfg.Iterations, 256)
	fmt.Printf("(node-local memory -> burst buffer -> shared PFS; seed %d)\n\n", cfg.Seed)

	tab, err := xsim.RunCheckpointIOAblation(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tab.Render())

	fmt.Println()
	fmt.Println("Reading the table: every arm faces the identical failure sequence, so")
	fmt.Println("the E2 columns are directly comparable. The flat PFS pays the full")
	fmt.Println("write on the critical path at every checkpoint; the tiered arms pay")
	fmt.Println("only the node-local commit and drain in the background, surviving")
	fmt.Println("failures through whichever deeper copy completed in time.")
}
