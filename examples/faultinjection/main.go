// Faultinjection: watch the simulator's failure machinery up close —
// injection, timeout-based detection, per-process failed lists, and the
// soft-error (bit flip) side of the toolkit.
//
//	go run ./examples/faultinjection
//
// Part 1 schedules an MPI process failure and lets a peer detect it
// through the simulated network communication timeout (ERRORS_RETURN, so
// the error surfaces to the application instead of aborting it).
//
// Part 2 injects a single bit flip into application data and tracks the
// silent corruption propagating through halo-style exchanges — the
// redMPI-style study the paper discusses, built from the toolkit's
// FlipFloat64 primitive.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"strings"

	"xsim"
)

var (
	traceOut = flag.String("trace", "", "write the detection demo's event timeline to this file (.json for Chrome trace-event format, anything else for CSV)")
	metrics  = flag.Bool("metrics", false, "print the detection demo's engine and MPI counters")
)

func main() {
	flag.Parse()
	detectionDemo()
	fmt.Println()
	sdcDemo()
}

// detectionDemo: rank 2 fails at 10 s; rank 0 posts a receive and observes
// the ProcFailedError after the detection timeout.
func detectionDemo() {
	fmt.Println("-- process failure detection (timeout-based) --")
	sched, err := xsim.ParseSchedule("2@10")
	if err != nil {
		log.Fatal(err)
	}
	cfg := xsim.Config{Ranks: 4, Failures: sched, Logf: log.Printf}
	var tr *xsim.TraceBuffer
	if *traceOut != "" || *metrics {
		tr = xsim.NewTrace(1 << 16)
		cfg.Trace = tr
	}
	sim, err := xsim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(func(env *xsim.Env) {
		defer env.Finalize()
		world := env.World()
		world.SetErrorHandler(xsim.ErrorsReturn)
		switch env.Rank() {
		case 2:
			// Computes past its scheduled failure; the failure activates
			// when the simulator regains control at the next clock
			// update.
			env.Compute(3e7) // ≈17.6 s on the paper's slowed node
		case 0:
			_, err := world.Recv(2, 0)
			if pf, ok := xsim.IsProcFailed(err); ok {
				fmt.Printf("rank 0 detected the failure of rank %d at %v "+
					"(failed at %v; the difference is the configured network timeout)\n",
					pf.Rank, env.Now(), pf.FailedAt)
			} else {
				log.Fatalf("expected a process-failure error, got %v", err)
			}
			fmt.Printf("rank 0's failed-peer list: %v\n", env.FailedPeers())
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run ended with %d completed, %d failed\n", res.Completed, res.Failed)
	if *metrics {
		fmt.Print(res.MetricsReport())
		if err := tr.WriteSummary(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	if *traceOut != "" {
		if err := writeTrace(tr, *traceOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace: %d events written to %s\n", tr.Len(), *traceOut)
	}
}

// writeTrace exports the timeline in the format implied by the extension.
func writeTrace(tr *xsim.TraceBuffer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.EqualFold(filepath.Ext(path), ".json") {
		err = tr.WriteChromeTrace(f)
	} else {
		err = tr.WriteCSV(f)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

// sdcDemo: a bit flip lands in one rank's data; neighbour exchanges spread
// the corruption — unless the computation's structure masks it.
func sdcDemo() {
	fmt.Println("-- silent data corruption propagation (bit flip) --")
	const ranks = 8
	sim, err := xsim.New(xsim.Config{Ranks: ranks})
	if err != nil {
		log.Fatal(err)
	}
	corrupted := make([]bool, ranks)
	_, err = sim.Run(func(env *xsim.Env) {
		defer env.Finalize()
		world := env.World()
		me, n := env.Rank(), env.Size()

		data := []float64{1, 1, 1, 1}
		if me == 3 {
			// The soft error: one flipped bit in rank 3's state.
			old, bad := xsim.FlipFloat64(data, 2, 62)
			env.Logf("bit flip: %v -> %v", old, bad)
		}

		// Rounds of neighbour averaging (a stand-in for halo-coupled
		// iteration): corruption spreads one hop per round.
		for round := 0; round < 3; round++ {
			next, prev := (me+1)%n, (me-1+n)%n
			reqR1, err := world.Irecv(prev, round)
			if err != nil {
				log.Fatal(err)
			}
			reqR2, err := world.Irecv(next, round)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := world.Isend(next, round, encode(data[0])); err != nil {
				log.Fatal(err)
			}
			if _, err := world.Isend(prev, round, encode(data[0])); err != nil {
				log.Fatal(err)
			}
			m1, err := world.Wait(reqR1)
			if err != nil {
				log.Fatal(err)
			}
			m2, err := world.Wait(reqR2)
			if err != nil {
				log.Fatal(err)
			}
			data[0] = (data[0] + data[2] + decode(m1.Data) + decode(m2.Data)) / 4
		}
		corrupted[me] = data[0] != 1
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("corrupted ranks after 3 rounds: ")
	for r, c := range corrupted {
		if c {
			fmt.Printf("%d ", r)
		}
	}
	fmt.Println("\n(a single flip can corrupt neighbours within rounds, as the redMPI study observed)")
}

func encode(v float64) []byte {
	return binary.LittleEndian.AppendUint64(nil, math.Float64bits(v))
}

func decode(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}
