package xsim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// campaignTemplate builds a small heat campaign template whose random
// failures strike often enough to exercise restarts.
func campaignTemplate(t *testing.T, iterations int) Campaign {
	t.Helper()
	hc, err := HeatWorkloadFor(8)
	if err != nil {
		t.Fatal(err)
	}
	hc.Iterations = iterations
	hc.ExchangeInterval = iterations / 5
	hc.CheckpointInterval = iterations / 5
	return Campaign{
		Base:             Config{Ranks: 8},
		MTTF:             100 * Second,
		CheckpointPrefix: "heat",
		AppFor:           func(int) App { return RunHeat(hc) },
	}
}

// campaignDigest flattens the per-seed observable outcomes into one
// comparable string.
func campaignDigest(set *CampaignSet) string {
	var b []byte
	for i, r := range set.Results {
		if r == nil {
			b = fmt.Appendf(b, "%d:nil;", set.Seeds[i])
			continue
		}
		b = fmt.Appendf(b, "%d:E2=%v,F=%d,runs=%d,sim=%v;", set.Seeds[i], r.E2, r.Failures, len(r.Runs), r.SimTime)
	}
	return string(b)
}

func TestRunCampaignsDeterministicAcrossPools(t *testing.T) {
	// The acceptance bar for the orchestration layer: a 50-seed campaign
	// produces bit-identical per-seed results at any pool size, because
	// every seed derives from the campaign seed and the run index alone.
	digests := make(map[int]string)
	for _, pool := range []int{1, 2, 8} {
		set, err := RunCampaigns(context.Background(), CampaignSetConfig{
			RunSpec:  RunSpec{Seed: 42, Pool: pool},
			Template: campaignTemplate(t, 50),
			Count:    50,
		})
		if err != nil {
			t.Fatalf("pool=%d: %v", pool, err)
		}
		if got := set.Stats.Runner.Completed; got != 50 {
			t.Fatalf("pool=%d: completed = %d, want 50", pool, got)
		}
		if set.Stats.SimTime == 0 || set.Stats.Engine.EventsDispatched == 0 {
			t.Fatalf("pool=%d: pooled metrics empty: %+v", pool, set.Stats)
		}
		digests[pool] = campaignDigest(set)
	}
	if digests[1] != digests[2] || digests[1] != digests[8] {
		t.Fatalf("campaign digests differ across pool sizes:\n1: %s\n2: %s\n8: %s",
			digests[1], digests[2], digests[8])
	}
}

func TestRunCampaignsExplicitSeedsAndMean(t *testing.T) {
	set, err := RunCampaigns(context.Background(), CampaignSetConfig{
		RunSpec:  RunSpec{Pool: 2},
		Template: campaignTemplate(t, 50),
		Seeds:    []int64{133, 134, 135},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Results) != 3 || len(set.Seeds) != 3 {
		t.Fatalf("results = %d, seeds = %d", len(set.Results), len(set.Seeds))
	}
	if mean := set.MeanE2(); mean <= 0 {
		t.Fatalf("MeanE2 = %v", mean)
	}
}

func TestRunCampaignsRejectsSharedStore(t *testing.T) {
	tpl := campaignTemplate(t, 50)
	tpl.Base.Store = NewStore()
	if _, err := RunCampaigns(context.Background(), CampaignSetConfig{Template: tpl}); err == nil {
		t.Fatal("shared Template.Base.Store should be rejected")
	}
}

func TestRunCampaignsCancelMidCampaignNoLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	tpl := campaignTemplate(t, 5000)
	var once sync.Once
	appFor := tpl.AppFor
	tpl.AppFor = func(run int) App {
		// Cancel as soon as the first application run is under way, so the
		// pool is caught mid-simulation.
		once.Do(cancel)
		return appFor(run)
	}

	set, err := RunCampaigns(ctx, CampaignSetConfig{
		RunSpec:  RunSpec{Seed: 7, Pool: 2},
		Template: tpl,
		Count:    6,
	})
	if err == nil {
		t.Fatal("cancelled campaign set should report an error")
	}
	if !errors.Is(err, ErrCancelled) && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCancelled or context.Canceled in the chain", err)
	}
	if set == nil {
		t.Fatal("cancelled campaign set should still return partial results")
	}
	var runErr *RunError
	if !errors.As(err, &runErr) {
		t.Fatalf("err = %v, want a *RunError in the chain", err)
	}
	if got := set.Stats.Runner.Failed + set.Stats.Runner.Skipped; got == 0 {
		t.Fatalf("stats should count failed/skipped runs: %+v", set.Stats.Runner)
	}

	// Engine VPs die synchronously in the teardown kill; give the runtime
	// a moment to retire them before counting.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func TestTableIIPoolMatchesSequential(t *testing.T) {
	// The fan-out re-platforming must not change a single cell: the same
	// grid computed sequentially and with four cells in flight is
	// row-for-row identical (per-cell seeds depend only on the config).
	run := func(pool int) *TableII {
		tab, err := RunTableIIContext(context.Background(), TableIIConfig{
			RunSpec:    RunSpec{Ranks: 16, Seed: 133, Pool: pool},
			Iterations: 100,
			Intervals:  []int{50, 25},
			MTTFs:      []Duration{500 * Second},
		})
		if err != nil {
			t.Fatalf("pool=%d: %v", pool, err)
		}
		return tab
	}
	seq, par := run(1), run(4)
	if len(seq.Rows) != len(par.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(seq.Rows), len(par.Rows))
	}
	for i := range seq.Rows {
		if seq.Rows[i] != par.Rows[i] {
			t.Fatalf("row %d differs: pool=1 %+v vs pool=4 %+v", i, seq.Rows[i], par.Rows[i])
		}
	}
	// 1 baseline E1 + 2 interval E1s + 2 campaign cells = 5 tasks.
	if par.Stats.Runner.Completed != 5 {
		t.Fatalf("completed = %d, want 5", par.Stats.Runner.Completed)
	}
}

// TestCheckpointIOAblationSmoke pins the checkpoint-I/O ablation's
// qualitative shape at CI scale: with the I/O cost on, the free arm is
// strictly fastest, the tiered arm strictly beats the flat shared PFS,
// and the recovered-overhead fractions are meaningful (in (0, 1]).
func TestCheckpointIOAblationSmoke(t *testing.T) {
	cfg := CheckpointIOAblationConfig{
		RunSpec:    RunSpec{Ranks: 64, Seed: 133},
		Iterations: 60,
		Intervals:  []int{20},
		MTTFs:      []Duration{150 * Second},
	}
	tab, err := RunCheckpointIOAblationContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 4 arms × (baseline E1 + one interval E1 + one campaign cell).
	if len(tab.Rows) != 12 {
		t.Fatalf("got %d rows, want 12:\n%s", len(tab.Rows), tab.Render())
	}
	t.Logf("\n%s", tab.Render())

	const c = 20
	free := tab.Row(IOArmFree, 0, c)
	flat := tab.Row(IOArmFlatPFS, 0, c)
	tiered := tab.Row(IOArmTiered, 0, c)
	incr := tab.Row(IOArmTieredIncr, 0, c)
	if free == nil || flat == nil || tiered == nil || incr == nil {
		t.Fatal("missing E1 rows")
	}
	if !(free.E1 < tiered.E1 && tiered.E1 < flat.E1) {
		t.Fatalf("E1 ordering broken: free %v, tiered %v, flat %v",
			free.E1, tiered.E1, flat.E1)
	}
	if incr.E1 > tiered.E1 {
		t.Fatalf("incremental E1 %v above plain tiered %v", incr.E1, tiered.E1)
	}
	for _, arm := range []string{IOArmTiered, IOArmTieredIncr} {
		if r := tab.RecoveredE1(arm, c); r <= 0 || r > 1 {
			t.Fatalf("RecoveredE1(%s) = %v, want in (0, 1]", arm, r)
		}
	}

	// The campaign cells face identical failure sequences (the draws
	// depend on seed and MTTF, not the arm), so F matches across arms
	// and the E2 ordering mirrors E1.
	mttf := cfg.MTTFs[0]
	cells := make([]*CheckpointIOAblationRow, 0, 4)
	for _, arm := range []string{IOArmFree, IOArmFlatPFS, IOArmTiered, IOArmTieredIncr} {
		cell := tab.Row(arm, mttf, c)
		if cell == nil {
			t.Fatalf("missing campaign cell for %s", arm)
		}
		cells = append(cells, cell)
	}
	for _, cell := range cells[1:] {
		if cell.F != cells[0].F {
			t.Fatalf("failure counts diverge across arms:\n%s", tab.Render())
		}
	}
	if cells[0].F == 0 {
		t.Fatalf("no failures at MTTF %v — campaign cells degenerate", mttf)
	}
	if fr, fl := cells[0], cells[1]; fr.E2 >= fl.E2 {
		t.Fatalf("flat-PFS E2 %v not above free E2 %v", fl.E2, fr.E2)
	}
	if ti, fl := cells[2], cells[1]; ti.E2 >= fl.E2 {
		t.Fatalf("tiered E2 %v not below flat-PFS E2 %v", ti.E2, fl.E2)
	}
	if r := tab.Recovered(IOArmTiered, mttf, c); r <= 0 || r > 1 {
		t.Fatalf("Recovered(tiered) = %v, want in (0, 1]", r)
	}
}

func TestTableIPoolMatchesSequential(t *testing.T) {
	run := func(pool int) *TableIResult {
		res, err := RunTableIContext(context.Background(), TableIConfig{
			RunSpec: RunSpec{Seed: 2013, Pool: pool},
		})
		if err != nil {
			t.Fatalf("pool=%d: %v", pool, err)
		}
		return res
	}
	seq, par := run(1), run(8)
	if seq.Injections != par.Injections || seq.Survived != par.Survived {
		t.Fatalf("Table I differs across pools: %+v vs %+v", seq.Summary, par.Summary)
	}
	for i := range seq.ToFailure {
		if seq.ToFailure[i] != par.ToFailure[i] {
			t.Fatalf("victim %d: %d vs %d injections", i, seq.ToFailure[i], par.ToFailure[i])
		}
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sim, err := New(Config{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.RunContext(ctx, func(e *Env) { e.Finalize() })
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
}

func TestResultErrTyped(t *testing.T) {
	hc, _ := HeatWorkloadFor(8)
	hc.Iterations = 50
	hc.ExchangeInterval = 10
	hc.CheckpointInterval = 10
	sim, err := New(Config{Ranks: 8, Failures: Schedule{{Rank: 3, At: Time(60 * Second)}}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(RunHeat(hc))
	if err != nil {
		t.Fatal(err)
	}
	if res.Success() {
		t.Fatal("run with an injected failure should not succeed")
	}
	if !errors.Is(res.Err(), ErrAborted) {
		t.Fatalf("res.Err() = %v, want ErrAborted", res.Err())
	}

	ok, err := New(Config{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	cleanRes, err := ok.Run(func(e *Env) { e.Finalize() })
	if err != nil {
		t.Fatal(err)
	}
	if cleanRes.Err() != nil {
		t.Fatalf("clean run Err() = %v", cleanRes.Err())
	}
}
