package xsim

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// TestCampaignSpecRoundTripQuick is the wire contract's core property:
// decoding a spec's own encoding reproduces it exactly, for randomly
// generated specs of any shape (valid or not — round-trip is a purely
// syntactic promise).
func TestCampaignSpecRoundTripQuick(t *testing.T) {
	f := func(s CampaignSpec) bool {
		data, err := json.Marshal(&s)
		if err != nil {
			return false
		}
		got, err := DecodeCampaignSpec(data)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		return reflect.DeepEqual(&s, got)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestOutcomeRoundTripQuick extends the syntactic round-trip promise to
// the result side of the wire.
func TestOutcomeRoundTripQuick(t *testing.T) {
	f := func(o CampaignOutcome) bool {
		data, err := json.Marshal(&o)
		if err != nil {
			return false
		}
		var got CampaignOutcome
		if err := json.Unmarshal(data, &got); err != nil {
			return false
		}
		return reflect.DeepEqual(&o, &got)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	_, err := DecodeCampaignSpec([]byte(`{"version":1,"kind":"table1","bogus":3}`))
	var se *SpecError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *SpecError", err)
	}
	if se.Field != "bogus" || se.Msg != "unknown field" {
		t.Fatalf("SpecError = %+v", se)
	}
}

func TestDecodeRejectsMalformedDocuments(t *testing.T) {
	for _, doc := range []string{
		``, `{`, `[1,2]`, `{"version":"one","kind":"table1"}`,
		`{"version":1,"kind":"table1"} trailing`,
	} {
		if _, err := DecodeCampaignSpec([]byte(doc)); !IsSpecError(err) {
			t.Errorf("DecodeCampaignSpec(%q) err = %v, want *SpecError", doc, err)
		}
	}
	// Type mismatches name the offending field.
	_, err := DecodeCampaignSpec([]byte(`{"version":1,"kind":"table2","table2":{"iterations":"many"}}`))
	var se *SpecError
	if !errors.As(err, &se) || !strings.Contains(se.Field, "iterations") {
		t.Fatalf("err = %v, want *SpecError naming iterations", err)
	}
}

func TestValidateCatalogsViolations(t *testing.T) {
	spec := &CampaignSpec{
		Version: 99,
		Kind:    "nonsense",
		Ranks:   -1,
		TableII: &TableIIParams{},
	}
	err := spec.Validate()
	if err == nil {
		t.Fatal("Validate accepted a broken spec")
	}
	for _, field := range []string{"version", "kind", "ranks", "table2"} {
		if !strings.Contains(err.Error(), fmt.Sprintf("field %q", field)) {
			t.Errorf("error does not mention field %q: %v", field, err)
		}
	}
}

func TestValidateKindSpecificRanges(t *testing.T) {
	cases := []struct {
		name  string
		spec  CampaignSpec
		field string
	}{
		{"negative victims", CampaignSpec{Version: 1, Kind: KindTableI,
			TableI: &TableIParams{Victims: -1}}, "table1.victims"},
		{"zero interval", CampaignSpec{Version: 1, Kind: KindTableII,
			TableII: &TableIIParams{Intervals: []int{0}}}, "table2.intervals[0]"},
		{"negative mttf", CampaignSpec{Version: 1, Kind: KindTableII,
			TableII: &TableIIParams{MTTFSeconds: []float64{-5}}}, "table2.mttf_seconds[0]"},
		{"degree one", CampaignSpec{Version: 1, Kind: KindCrossover,
			Crossover: &CrossoverParams{Degrees: []int{1}}}, "replication_crossover.degrees[0]"},
		{"indivisible degree", CampaignSpec{Version: 1, Kind: KindCrossover, Ranks: 10,
			Crossover: &CrossoverParams{Degrees: []int{3}}}, "replication_crossover.degrees[0]"},
		{"delta out of range", CampaignSpec{Version: 1, Kind: KindIOAblation,
			IOAblation: &IOAblationParams{DeltaFraction: 1.5}}, "io_ablation.delta_fraction"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if err == nil || !strings.Contains(err.Error(), fmt.Sprintf("field %q", tc.field)) {
				t.Fatalf("err = %v, want violation on %q", err, tc.field)
			}
		})
	}
}

// TestCanonicalIsByteStable pins the cache-key foundation: documents that
// differ only in field order, whitespace, or reliance on defaults
// canonicalise to identical bytes.
func TestCanonicalIsByteStable(t *testing.T) {
	docs := []string{
		`{"version":1,"kind":"table2","seed":7}`,
		`{"seed":7,"kind":"table2","version":1}`,
		"{\n  \"kind\": \"table2\",\n  \"version\": 1,\n  \"seed\": 7\n}",
		// Defaults spelled out explicitly must land on the same bytes as
		// defaults left implicit.
		`{"version":1,"kind":"table2","seed":7,"ranks":32768,
		  "table2":{"iterations":1000,"intervals":[500,250,125],
		            "mttf_seconds":[6000,3000],"max_runs":0,"paper_io":false}}`,
	}
	var want []byte
	for i, doc := range docs {
		spec, err := DecodeCampaignSpec([]byte(doc))
		if err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
		got, err := spec.Canonical()
		if err != nil {
			t.Fatalf("doc %d: Canonical: %v", i, err)
		}
		if i == 0 {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("doc %d canonicalises differently:\n got %s\nwant %s", i, got, want)
		}
	}
	// Repeated canonicalisation of the same spec is byte-stable.
	spec, _ := DecodeCampaignSpec([]byte(docs[0]))
	a, _ := spec.Canonical()
	b, _ := spec.Canonical()
	if !bytes.Equal(a, b) {
		t.Fatal("Canonical is not deterministic across calls")
	}
}

// TestCanonicalDoesNotMutate pins that Canonical normalizes a copy: the
// receiver keeps its sparse, as-submitted shape.
func TestCanonicalDoesNotMutate(t *testing.T) {
	spec := &CampaignSpec{Version: 1, Kind: KindTableII, Seed: 7, Workers: 3, Pool: 2}
	if _, err := spec.Canonical(); err != nil {
		t.Fatal(err)
	}
	if spec.TableII != nil || spec.Ranks != 0 || spec.Workers != 3 || spec.Pool != 2 {
		t.Fatalf("Canonical mutated the receiver: %+v", spec)
	}
}

// TestCacheKeyIgnoresExecutionKnobs pins the cache-key semantics:
// workers and pool cannot change results (the repo's determinism
// invariant), so they must not change the key; everything semantic must.
func TestCacheKeyIgnoresExecutionKnobs(t *testing.T) {
	base := CampaignSpec{Version: 1, Kind: KindTableII, Seed: 7}
	key := func(s CampaignSpec) string {
		t.Helper()
		k, err := s.CacheKey()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	k0 := key(base)

	knobs := base
	knobs.Workers = 8
	knobs.Pool = 4
	if key(knobs) != k0 {
		t.Error("Workers/Pool changed the cache key")
	}

	seeded := base
	seeded.Seed = 8
	if key(seeded) == k0 {
		t.Error("Seed did not change the cache key")
	}

	scaled := base
	scaled.Ranks = 64
	if key(scaled) == k0 {
		t.Error("Ranks did not change the cache key")
	}

	kinded := base
	kinded.Kind = KindIntervalSweep
	if key(kinded) == k0 {
		t.Error("Kind did not change the cache key")
	}
}

// TestSpecRunMatchesDriver pins end-to-end transport equivalence at the
// source: executing a wire spec must agree with calling the experiment
// driver directly on the equivalent config, and repeated executions must
// produce byte-identical canonical outcomes.
func TestSpecRunMatchesDriver(t *testing.T) {
	spec := &CampaignSpec{
		Version: 1,
		Kind:    KindTableI,
		Seed:    2013,
		TableI:  &TableIParams{Victims: 10, MaxInjections: 50},
	}
	out, err := spec.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	direct, err := RunTableI(TableIConfig{
		RunSpec: RunSpec{Seed: 2013}, Victims: 10, MaxInjections: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.TableI == nil {
		t.Fatal("outcome has no table1 block")
	}
	if out.TableI.Injections != direct.Injections ||
		!reflect.DeepEqual(out.TableI.ToFailure, direct.ToFailure) ||
		!reflect.DeepEqual(out.TableI.KillsByRegion, direct.KillsByRegion) {
		t.Fatalf("wire outcome diverges from direct driver:\nwire   %+v\ndirect %+v",
			out.TableI, direct)
	}

	again, err := spec.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := out.Canonical()
	b, _ := again.Canonical()
	if !bytes.Equal(a, b) {
		t.Fatal("repeated runs canonicalise differently")
	}
}

// TestSpecRunTableII does the same for a simulated-campaign kind, at the
// fast 64-rank scale the existing Table II tests use.
func TestSpecRunTableII(t *testing.T) {
	spec := &CampaignSpec{
		Version: 1,
		Kind:    KindTableII,
		Ranks:   64,
		Seed:    133,
		TableII: &TableIIParams{Iterations: 200, Intervals: []int{100, 50}, MTTFSeconds: []float64{1000}},
	}
	out, err := spec.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	direct, err := RunTableII(TableIIConfig{
		RunSpec:    RunSpec{Ranks: 64, Seed: 133},
		Iterations: 200,
		Intervals:  []int{100, 50},
		MTTFs:      []Duration{1000 * Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.TableII.Rows) != len(direct.Rows) {
		t.Fatalf("rows = %d, want %d", len(out.TableII.Rows), len(direct.Rows))
	}
	for i, r := range direct.Rows {
		w := out.TableII.Rows[i]
		if w.C != r.C || w.E1NS != int64(r.E1) || w.E2NS != int64(r.E2) || w.F != r.F {
			t.Fatalf("row %d: wire %+v vs direct %+v", i, w, r)
		}
	}
	if out.SimTimeNS <= 0 {
		t.Fatalf("SimTimeNS = %d, want positive", out.SimTimeNS)
	}
}

// TestRunSpecProgressEvents pins the wire progress feed: every state
// change arrives as a serialized event with a sensible terminal tally.
func TestRunSpecProgressEvents(t *testing.T) {
	var events []ProgressEvent
	cfg := TableIConfig{
		RunSpec: RunSpec{
			Seed:       2013,
			Pool:       2,
			OnProgress: func(ev ProgressEvent) { events = append(events, ev) },
		},
		Victims: 5, MaxInjections: 50,
	}
	if _, err := RunTableI(cfg); err != nil {
		t.Fatal(err)
	}
	if len(events) < 10 { // 5 victims × (started + completed)
		t.Fatalf("events = %d, want at least 10", len(events))
	}
	var last ProgressEvent
	states := map[string]int{}
	for _, ev := range events {
		states[ev.State]++
		last = ev
	}
	if states["started"] != 5 || states["completed"] != 5 {
		t.Fatalf("state histogram = %v", states)
	}
	if last.Done != 5 || last.Total != 5 || last.Failed != 0 {
		t.Fatalf("terminal tally = %+v", last)
	}
}

func TestNormalizeFillsDriverDefaults(t *testing.T) {
	spec := &CampaignSpec{Version: 1, Kind: KindTableII}
	spec.Normalize()
	if spec.Ranks != 32768 {
		t.Errorf("Ranks = %d, want the paper's 32768", spec.Ranks)
	}
	if spec.CallOverheadNS != int64(PaperCallOverhead) {
		t.Errorf("CallOverheadNS = %d, want PaperCallOverhead", spec.CallOverheadNS)
	}
	p := spec.TableII
	if p == nil {
		t.Fatal("Normalize did not create the table2 block")
	}
	if p.Iterations != 1000 || !reflect.DeepEqual(p.Intervals, []int{500, 250, 125}) ||
		!reflect.DeepEqual(p.MTTFSeconds, []float64{6000, 3000}) {
		t.Errorf("table2 defaults = %+v", p)
	}

	cross := &CampaignSpec{Version: 1, Kind: KindCrossover}
	cross.Normalize()
	if cross.Ranks != 24 || cross.Crossover == nil || len(cross.Crossover.MTTFSeconds) == 0 {
		t.Errorf("crossover defaults = ranks %d, %+v", cross.Ranks, cross.Crossover)
	}
}

// FuzzCampaignSpecDecode asserts the decode path never panics and that
// everything it accepts survives a canonical round trip.
func FuzzCampaignSpecDecode(f *testing.F) {
	f.Add([]byte(`{"version":1,"kind":"table1"}`))
	f.Add([]byte(`{"version":1,"kind":"table2","seed":7,"table2":{"intervals":[500]}}`))
	f.Add([]byte(`{"version":1,"kind":"replication-crossover","replication_crossover":{"degrees":[2,3]}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeCampaignSpec(data)
		if err != nil {
			if !IsSpecError(err) {
				t.Fatalf("decode error is not a *SpecError: %v", err)
			}
			return
		}
		// Whatever decoded must re-encode and decode to itself.
		out, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		back, err := DecodeCampaignSpec(out)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !reflect.DeepEqual(spec, back) {
			t.Fatalf("round trip diverged:\n in %+v\nout %+v", spec, back)
		}
		// Canonicalisation must never panic; on valid specs it must be
		// stable.
		if a, err := spec.Canonical(); err == nil {
			b, err := spec.Canonical()
			if err != nil || !bytes.Equal(a, b) {
				t.Fatalf("canonical not stable: %v", err)
			}
		}
	})
}
